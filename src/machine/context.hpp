// Context: a processor's handle to the machine from inside an SPMD program.
//
// All communication and all simulated-time accounting flows through this
// class.  The cost model:
//   send:  clock += send_overhead;  message timestamped with clock
//   recv:  arrival = send_time + latency_eff + bytes * byte_time
//          clock   = max(clock, arrival) + recv_overhead
//   compute(f): clock += f * flop_time
// which makes the final per-processor clocks a causally consistent schedule
// of the program on the modeled hardware, independent of host scheduling.
//
// With LinkContention::kPorts the wire term additionally serializes on each
// node's injection and ejection links (single-port model):
//   send:  send_time = max(clock, out_link_free);
//          out_link_free = send_time + bytes * byte_time
//   recv:  start = max(send_time + latency_eff, in_link_free)
//          arrival = start + bytes * byte_time;  in_link_free = arrival
// Both port clocks are owned by their processor's fiber, so contention
// resolution stays deterministic (ejection conflicts resolve in receive
// order).
//
// With LinkContention::kStoreForward every directed edge of route(src, dst)
// serializes instead, and each hop stores the whole message before
// forwarding it (wire = bytes * byte_time):
//   send:  send_time = max(clock, out_edge_free[first edge]);
//          out_edge_free[first edge] = send_time + wire
//   recv:  t = send_time + latency + wire            // first edge
//          for each interior/final edge e:           // receiver's ledger
//            t += per_hop;  t = max(t, busy(e)) + wire
//   arrival = t
// so an uncontended h-hop message costs latency + (h-1) per_hop +
// h * wire.  busy(e) considers only ledger entries with a smaller
// (send_time, src, seq) key, and the ledger is sharded per resolving
// rank — the sender owns its first-hop edges, the receiver everything
// after — so resolution never races host scheduling: repeated runs produce
// bit-identical clocks.  The sharding is the model's approximation: edges
// shared by messages converging on one receiver queue (tree saturation),
// while messages to different receivers occupy independent copies of an
// edge.  Whatever the tier, payload routing is unchanged — only clocks
// move.
#pragma once

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "machine/machine.hpp"
#include "support/check.hpp"

namespace kali {

class Context;

/// Completion handle of a nonblocking operation (Context::isend/irecv).
///
/// An isend's handle is born complete: the model's send is fire-and-forget
/// (the payload is copied and deposited at send time), so there is nothing
/// left to wait for and dropping the handle is legal.  An irecv's handle is
/// pending until a wait point completes it; dropping a pending handle leaks
/// the operation, which the KALI_CHECK_INVARIANTS build diagnoses when the
/// rank's program returns (Machine::run).
///
/// Handles are freely copyable: completion is recorded in the mailbox's
/// operation table, not the handle, and operation ids are never reused, so
/// every copy agrees — test()/wait() on an already-completed operation are
/// cheap no-ops.
class CommHandle {
 public:
  CommHandle() = default;  ///< born complete (no pending operation)

  /// True once the operation has completed (never blocks, never completes).
  [[nodiscard]] bool done() const;

  /// Try to complete without blocking: true iff the operation (and every
  /// operation posted earlier on its (src, tag) lane — FIFO non-overtaking)
  /// has a matched message queued, in which case all of them complete now.
  bool test();

  /// Park until the operation can complete, then complete it (and its lane
  /// predecessors).  A scheduler yield point, exactly like a blocking recv:
  /// the wait publishes its wait-for edge to the deadlock detector.
  void wait();

 private:
  friend class Context;
  CommHandle(Context* ctx, std::uint64_t op) : ctx_(ctx), op_(op) {}
  Context* ctx_ = nullptr;
  std::uint64_t op_ = 0;  ///< 0 = complete; else pending operation id
};

class Context {
 public:
  Context(Machine& m, Processor& p) : machine_(&m), self_(&p) {}

  [[nodiscard]] int rank() const { return self_->rank(); }
  [[nodiscard]] int nprocs() const { return machine_->size(); }
  [[nodiscard]] Machine& machine() { return *machine_; }
  [[nodiscard]] const MachineConfig& config() const { return machine_->config(); }
  [[nodiscard]] Processor& proc() { return *self_; }

  // --- simulated time ---
  [[nodiscard]] double clock() const { return self_->clock(); }

  /// Charge `flops` floating point operations of modeled computation.
  void compute(double flops);

  /// Charge raw modeled seconds of computation (non-flop work).
  void charge_seconds(double seconds);

  // --- raw messaging ---
  void send_bytes(int dst, int tag, std::span<const std::byte> data);
  Message recv_message(int src, int tag);

  // --- typed messaging (trivially copyable payloads) ---
  template <class T>
  void send(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               std::span<const std::byte>(reinterpret_cast<const std::byte*>(&value), sizeof(T)));
  }

  template <class T>
  T recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv_message(src, tag);
    KALI_CHECK(m.size_bytes() == sizeof(T), "typed recv size mismatch");
    T value;
    std::memcpy(&value, m.payload.data(), sizeof(T));
    return value;
  }

  template <class T>
  void send_span(int dst, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               std::span<const std::byte>(reinterpret_cast<const std::byte*>(values.data()),
                                          values.size_bytes()));
  }

  template <class T>
  std::vector<T> recv_vec(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv_message(src, tag);
    KALI_CHECK(m.size_bytes() % sizeof(T) == 0, "span recv size mismatch");
    std::vector<T> out(m.size_bytes() / sizeof(T));
    if (!out.empty()) {  // empty payloads are legal; memcpy(null, ..) is not
      std::memcpy(out.data(), m.payload.data(), m.size_bytes());
    }
    return out;
  }

  template <class T>
  void recv_into(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv_message(src, tag);
    KALI_CHECK(m.size_bytes() == out.size_bytes(), "recv_into size mismatch");
    if (!out.empty()) {
      std::memcpy(out.data(), m.payload.data(), m.size_bytes());
    }
  }

  // --- nonblocking messaging -------------------------------------------
  //
  // isend is a send that also returns a handle; it pays the identical cost
  // and moves the identical message, so blocking and nonblocking senders
  // may interleave freely on one (src, dst, tag) lane without perturbing
  // ledgers, traces, or FIFO order.  irecv registers a pending operation
  // (destination buffer + expected size) in the mailbox's operation table
  // at zero model cost; the receive's full cost — arrival resolution,
  // wait, recv_overhead — is charged at the wait point that completes it.
  //
  // Completion ordering is deterministic by construction: messages match
  // pending operations per (src, tag) lane in FIFO order, and when one
  // wait point completes several operations at once it applies their
  // receive-side cost algebra in ascending (send_time, src, seq) of the
  // matched messages — the same canonical serialization key the
  // store-and-forward edge ledgers use — never in host arrival order.
  // On a single lane that key order coincides with FIFO post order.
  //
  // kAnySource is not allowed on irecv: a wildcard's match would depend on
  // push arrival order, which host scheduling decides.

  /// Nonblocking send.  Identical cost and semantics to send_bytes; the
  /// returned handle is already complete.
  CommHandle isend_bytes(int dst, int tag, std::span<const std::byte> data) {
    send_bytes(dst, tag, data);
    return CommHandle{};
  }

  template <class T>
  CommHandle isend(int dst, int tag, const T& value) {
    send(dst, tag, value);
    return CommHandle{};
  }

  template <class T>
  CommHandle isend_span(int dst, int tag, std::span<const T> values) {
    send_span(dst, tag, values);
    return CommHandle{};
  }

  /// Post a nonblocking receive into `out` (caller-owned; must stay alive
  /// and untouched until the handle completes).  The matching message's
  /// payload must be exactly out.size() bytes.
  CommHandle irecv_bytes(int src, int tag, std::span<std::byte> out);

  template <class T>
  CommHandle irecv_into(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return irecv_bytes(
        src, tag,
        std::span<std::byte>(reinterpret_cast<std::byte*>(out.data()),
                             out.size_bytes()));
  }

  template <class T>
  CommHandle irecv(int src, int tag, T& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return irecv_bytes(
        src, tag,
        std::span<std::byte>(reinterpret_cast<std::byte*>(&out), sizeof(T)));
  }

  /// Complete `h` (see CommHandle::wait).  No-op on a completed handle.
  void wait(CommHandle& h);

  /// Try to complete `h` without blocking (see CommHandle::test).
  bool test(CommHandle& h);

  /// Complete every handle in `hs`: parks until all of them (plus lane
  /// predecessors) have matched messages queued, then completes the whole
  /// batch in ascending (send_time, src, seq) order.
  void wait_all(std::span<CommHandle> hs);

 private:
  /// Everything a receive does after its message leaves the queue: trace,
  /// epoch invariant, arrival resolution under the configured contention
  /// tier, clock/wait/overhead accounting, counters, HB writes.  Returns
  /// the modeled arrival time (for the overlap ledger).
  double finish_receive(Message& m);

  /// Complete the pending operations named by `ids` (they must all be
  /// pending): park until satisfiable, then pop + apply in key order.
  void complete_ops(std::vector<std::uint64_t> ids);

  /// `id`'s operation plus every earlier pending operation on its lane.
  [[nodiscard]] std::vector<std::uint64_t> with_lane_predecessors(
      std::uint64_t id) const;

  Machine* machine_;
  Processor* self_;
};

inline bool CommHandle::done() const {
  return op_ == 0 || !ctx_->proc().mailbox().op_pending(op_);
}

inline bool CommHandle::test() {
  if (op_ == 0 || ctx_->test(*this)) {
    op_ = 0;
    return true;
  }
  return false;
}

inline void CommHandle::wait() {
  if (op_ != 0) {
    ctx_->wait(*this);
    op_ = 0;
  }
}

}  // namespace kali

// Cooperative fiber scheduler: simulated ranks as user-level contexts
// multiplexed onto a fixed pool of host worker threads, replacing the old
// thread-per-rank Machine::run (which capped P at what the OS would
// spawn).  With fibers, P = 64k ranks is a bench setting, not a fork bomb.
//
// Determinism contract: the machine layer's results (clocks, counters,
// traces) are bit-identical for ANY host interleaving because all
// simulated state is sharded per rank — a rank's processor, ledgers, and
// trace shard are touched only by that rank's own execution context
// (docs/machine-model.md, "Execution model").  The scheduler therefore
// does not need — and does not promise — a deterministic interleaving;
// it promises only a deterministic *seed order* (ranks enter the run
// queue ascending) and FIFO requeueing, which makes single-worker runs
// fully reproducible step sequences, a property the differential tests
// exploit.
//
// Yield points: Mailbox::recv parks the calling fiber when no match is
// queued (prepare_park / commit_park below), and quiesce() parks all
// fibers for machine-global maintenance (edge-ledger compaction).  A
// parked fiber with no possible waker is first-class scheduler state:
// with deadlock detection on it never happens (the wait-for-graph check
// throws first), and the wall-clock fallback fires only on a *full
// stall* — every fiber parked past its deadline — because a cooperative
// scheduler cannot preempt a spinning fiber to deliver a timeout.
//
// All host-threading machinery (workers, mutex, condvar, thread-locals)
// lives in scheduler.cpp, the one machine-layer file the determinism
// lint's raw-thread rule exempts.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace kali {

class HbLog;

/// Harness seam for systematic interleaving exploration: when installed
/// (set_hook / MachineConfig::sim_hook), every dispatch decision a worker
/// makes is delegated to the hook, which picks the next runnable fiber
/// from the FIFO-ordered ready queue.  tools/explore_scheduler drives
/// small programs through every reachable dispatch sequence this way and
/// asserts the results are bit-identical — the mechanized form of the
/// determinism contract above.
///
/// pick_next is called under the scheduler lock: it must not call back
/// into the scheduler, and with sim_workers > 1 it must be thread-safe.
/// Out-of-range picks fall back to index 0 (FIFO).
class SchedulerHook {
 public:
  virtual ~SchedulerHook() = default;
  /// `ready` lists the runnable ranks in FIFO order (always non-empty).
  /// Return the index of the rank the worker should dispatch.
  virtual std::size_t pick_next(const std::vector<int>& ready) = 0;
};

class FiberScheduler {
 public:
  /// `nfibers` simulated ranks multiplexed onto `workers` host threads
  /// (0 = one per hardware thread, resolved here so callers never touch
  /// std::thread).  `park_timeout_seconds` bounds every quiesce park (the
  /// collective-mismatch guard); recv parks carry their own timeout.
  /// `stack_bytes` = 0 picks the build default (256 KiB; 1 MiB under a
  /// sanitizer, whose instrumented frames are fatter).
  FiberScheduler(int nfibers, int workers, double park_timeout_seconds,
                 std::size_t stack_bytes);
  ~FiberScheduler();
  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Run body(rank) to completion on every fiber, blocking the calling
  /// thread.  Single-shot: construct a fresh scheduler per run.  body
  /// must not let exceptions escape (Machine::run catches per rank); if
  /// one does anyway, the run aborts and the first such exception is
  /// rethrown here.
  void run(const std::function<void(int)>& body);

  // --- yield protocol (valid only on a fiber of this scheduler) ---
  //
  // The three-step shape closes the lost-wakeup window without making
  // wakers take the scheduler lock while the parker holds a mailbox lock:
  //   prepare_park();          // announce: state = kParking
  //   ...publish the wake condition under the resource's own lock...
  //   commit_park();           // suspend (or bounce straight back if a
  //                            // wake already landed in the window)
  // A waker that finds the fiber kParking flags it kWakeRequested and the
  // worker requeues it immediately after the switch — the wake is never
  // lost, whichever side of the swapcontext it lands on.

  /// Arm a park with a wall-clock deadline `timeout_seconds` from now.
  void prepare_park(double timeout_seconds);

  /// Suspend until wake()/abort()/deadline.  Returns true iff the
  /// deadline sweep woke us (the caller re-checks its condition and
  /// decides whether that is an error).
  bool commit_park();

  /// Abandon a prepared park (the condition was already satisfied).
  /// Returns true iff a wake had already landed in the announce window
  /// (its happens-before edge is consumed here instead of at a resume).
  bool cancel_park();

  /// Park until all nfibers ranks arrive; the last arrival alone runs
  /// `on_last` while every peer is provably suspended (their rank-sharded
  /// state is safe to read and rewrite), then releases everyone.  Throws
  /// kali::Error on abort or timeout (a collective not entered by every
  /// rank).
  void quiesce(const std::function<void()>& on_last);

  // --- valid from any thread ---

  /// Make `rank` runnable if parked (or parking).  No-op otherwise.
  void wake(int rank);

  /// Wake everything and poison future parks/quiesces; parked quiesce
  /// waiters throw.  Used by Machine::run's error path so a failing rank
  /// unwinds the whole pool promptly.
  void abort();

  [[nodiscard]] bool aborted() const;
  [[nodiscard]] int nfibers() const;

  /// Install a dispatch hook (see SchedulerHook).  Call before run();
  /// nullptr restores FIFO dispatch.
  void set_hook(SchedulerHook* hook);

  /// Replace the wall-clock source behind park deadlines and the stall
  /// sweep with `now_seconds` (monotone non-decreasing, fake-clock seam
  /// for tests/explorer — MachineConfig::sim_clock plumbs it through
  /// Machine::run).  Call before run(); nullptr restores the real
  /// steady clock.  Never feeds simulated clocks either way.
  void set_clock(double (*now_seconds)());

  /// Attach a happens-before event log (machine/hb.hpp): park/wake pairs,
  /// quiesce rendezvous edges, and stall-sweep wakes of subsequent runs
  /// are recorded into it.  nullptr detaches.  The log must outlive the
  /// run; Machine::run attaches its own machine-level log here.
  void attach_hb_log(HbLog* log);
  [[nodiscard]] HbLog* hb_log() const;

  /// Scheduler whose fiber is running on the calling thread, or nullptr
  /// when the caller is not a fiber (Mailbox uses this to fall back to
  /// its condition-variable path for standalone use).
  [[nodiscard]] static FiberScheduler* current();
  /// Rank of the fiber running on the calling thread, or -1.
  [[nodiscard]] static int current_rank();

  /// Implementation state (scheduler.cpp): public only so the worker/fiber
  /// plumbing in that file's anonymous namespace can name it — the type is
  /// incomplete everywhere else, so nothing outside can touch it.
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace kali

// Deterministic pseudo-random numbers for tests and workload generators.
//
// SplitMix64: tiny, fast, and fully reproducible across platforms —
// benchmark workloads must not depend on libstdc++'s distribution details.
#pragma once

#include <cstdint>

namespace kali {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [a, b).
  double uniform(double a, double b) { return a + (b - a) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    return lo + static_cast<int>(next_u64() % span);
  }

 private:
  std::uint64_t state_;
};

}  // namespace kali

// Plain-text table rendering for the benchmark harness.
//
// Every bench binary prints the rows/series of the paper artifact it
// reproduces; this formatter keeps those tables aligned and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace kali {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
std::string fmt(double v, int prec = 3);

/// Scientific formatting ("1.23e-05").
std::string fmt_sci(double v, int prec = 2);

/// Seconds with an auto-chosen unit ("1.2 ms", "340 us").
std::string fmt_time(double seconds);

}  // namespace kali

#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace kali {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  KALI_CHECK(cells.size() == headers_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    w[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(w[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(w[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) {
    line(row);
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string fmt_sci(double v, int prec) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(prec) << v;
  return os.str();
}

std::string fmt_time(double seconds) {
  const double a = seconds < 0 ? -seconds : seconds;
  if (a >= 1.0) return fmt(seconds, 3) + " s";
  if (a >= 1e-3) return fmt(seconds * 1e3, 3) + " ms";
  if (a >= 1e-6) return fmt(seconds * 1e6, 1) + " us";
  return fmt(seconds * 1e9, 1) + " ns";
}

}  // namespace kali

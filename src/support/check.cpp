#include "support/check.hpp"

#include <sstream>

namespace kali::detail {

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "KaliTP check failed: " << cond;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  os << " (" << file << ":" << line << ")";
  throw Error(os.str());
}

}  // namespace kali::detail

// Error handling primitives used across KaliTP.
//
// All precondition violations throw kali::Error so that tests can assert on
// failure behaviour (gtest EXPECT_THROW) instead of aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace kali {

/// Exception type for all KaliTP contract violations and runtime failures.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace kali

/// Precondition/invariant check; throws kali::Error with location info.
#define KALI_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::kali::detail::check_failed(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                      \
  } while (0)

/// Unconditional failure.
#define KALI_FAIL(msg) ::kali::detail::check_failed("<fail>", __FILE__, __LINE__, (msg))

/// Debug invariant check at the machine layer's determinism choke points
/// (ledger key ordering, clock monotonicity, tag-band registration,
/// barrier-straddling messages).  Compiled to a KALI_CHECK under the
/// KALI_CHECK_INVARIANTS build mode (cmake -DKALI_CHECK_INVARIANTS=ON);
/// a no-op otherwise, so the release hot paths pay nothing.  The condition
/// must be side-effect free: it is not evaluated in release builds.
#if defined(KALI_CHECK_INVARIANTS)
#define KALI_INVARIANT(cond, msg) KALI_CHECK(cond, msg)
#else
#define KALI_INVARIANT(cond, msg)      \
  do {                                 \
    (void)sizeof((cond) ? 1 : 0);      \
  } while (0)
#endif

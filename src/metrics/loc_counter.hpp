// Source-line counting for experiment E7: the paper (§6) claims "the
// message passing version of a program is often five to ten times longer
// than the sequential version".  We measure our own three Jacobi variants
// (and other pairs) the same way the claim is phrased: code lines, with
// blanks and comments excluded.
#pragma once

#include <string>

namespace kali {

struct LocStats {
  int total = 0;
  int code = 0;
  int comment = 0;
  int blank = 0;
};

/// Classify the lines of a C++ source file.  A line counts as code if any
/// non-whitespace survives after stripping // and /* */ comments.
LocStats count_loc_file(const std::string& path);

/// Same, over in-memory text (exposed for tests).
LocStats count_loc_text(const std::string& text);

}  // namespace kali

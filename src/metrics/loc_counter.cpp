#include "metrics/loc_counter.hpp"

#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace kali {

LocStats count_loc_text(const std::string& text) {
  LocStats stats;
  bool in_block_comment = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ++stats.total;
    bool has_code = false;
    bool has_comment = in_block_comment;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        has_comment = true;
        break;  // rest of line is a comment
      }
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        has_comment = true;
        ++i;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(line[i]))) {
        has_code = true;
      }
    }
    if (has_code) {
      ++stats.code;
    } else if (has_comment) {
      ++stats.comment;
    } else {
      ++stats.blank;
    }
  }
  return stats;
}

LocStats count_loc_file(const std::string& path) {
  std::ifstream in(path);
  KALI_CHECK(in.good(), "cannot open source file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return count_loc_text(buf.str());
}

}  // namespace kali

// Performance estimation — the tool the paper promises in §2:
//
//   "We plan to address this issue by providing performance estimation
//    tools, which will indicate which parts of a program will compile into
//    efficient executable code, and which will not."
//
// Closed-form first-order models of the runtime's primitives on a given
// MachineConfig.  The models mirror what the cost model charges (flops per
// stencil point, per-message overheads, alpha/beta wire terms), so a
// programmer can compare candidate distributions *before* running, and the
// E11 bench validates predictions against the simulator (target: within a
// few tens of percent — the fidelity the paper's tool would have needed to
// be useful).
#pragma once

#include "machine/config.hpp"

namespace kali {

class Predictor {
 public:
  Predictor(const MachineConfig& cfg, int nprocs)
      : cfg_(cfg), nprocs_(nprocs) {}

  /// End-to-end delivery time of one message of `bytes` over `hops`
  /// (cut-through wire: one byte-time term however many hops).
  [[nodiscard]] double message(double bytes, int hops = 1) const {
    return cfg_.send_overhead + cfg_.latency + cfg_.per_hop * (hops - 1) +
           bytes * cfg_.byte_time + cfg_.recv_overhead;
  }

  /// The same message under LinkContention::kStoreForward: every hop
  /// stores the whole payload before forwarding, so the wire term is paid
  /// once per edge.  Exact for an uncontended message (matches the
  /// simulator to the bit).
  [[nodiscard]] double message_store_forward(double bytes,
                                             int hops = 1) const {
    return cfg_.send_overhead + cfg_.latency + cfg_.per_hop * (hops - 1) +
           hops * bytes * cfg_.byte_time + cfg_.recv_overhead;
  }

  /// One 5-point-stencil halo exchange on a px x py block grid of an
  /// nx x ny array (star-mode faces, one latency round).
  [[nodiscard]] double halo_exchange2(int nx, int ny, int px, int py) const;

  /// The same halo exchange run split-phase (exchange_halo_begin /
  /// finish) with `hidden_flops` of interior compute between post and
  /// wait: returns the time of the combined exchange-plus-interior phase,
  /// where only whichever of interior compute and wire time is larger
  /// shows.  Pack/unpack and the per-message software overheads stay
  /// exposed — they execute on the rank's own clock, inside the window.
  /// Compare against halo_exchange2 + hidden_flops * flop_time for the
  /// blocking form of the same phase.
  [[nodiscard]] double halo_exchange2_split(int nx, int ny, int px, int py,
                                            double hidden_flops) const;

  /// Fraction of the split-phase exchange's wire time hidden behind the
  /// interior compute — the model-side counterpart of
  /// MachineStats::overlap_ratio() for a single halo phase.
  [[nodiscard]] double halo_overlap_ratio2(int nx, int ny, int px, int py,
                                           double hidden_flops) const;

  /// One Jacobi iteration (copy-in + exchange + stencil), Listing 2/3.
  [[nodiscard]] double jacobi_iteration(int n, int p_side) const;

  /// The same iteration with the exchange split-phase and the interior
  /// stencil rows (all but the boundary ring) hiding the wire.
  [[nodiscard]] double jacobi_iteration_split(int n, int p_side) const;

  /// One substructured tridiagonal solve of size n on p = 2^k processors.
  [[nodiscard]] double tri_solve(int n, int p) const;

  /// nsys pipelined solves (Listing 6).
  [[nodiscard]] double mtri_solve(int nsys, int n, int p) const;

  /// One ADI iteration on an n x n interior grid over px x py (Listing 7/8).
  [[nodiscard]] double adi_iteration(int n, int px, int py, bool pipelined) const;

  /// Wire-plus-overhead time of a complete exchange among p ranks where
  /// every ordered pair carries `bytes` — the fft2/ADI transpose shape
  /// redistribute() produces between (block, *) and (*, block) — issued
  /// through the round-structured schedule of machine/schedule.hpp.
  /// `model` mirrors MachineConfig::link_contention:
  ///  * kNone — slabs overlap on infinitely parallel links; only the last
  ///    slab's wire time is visible past the software overheads.
  ///  * kPorts — each of the p-1 rounds is a perfect matching, so every
  ///    injection/ejection link carries one slab per round and the wire
  ///    term is (p-1) slab times.
  ///  * kStoreForward — the busiest serialized edge paces the exchange:
  ///    the heaviest injection edge (destinations sharing a first hop at
  ///    one sender) or the heaviest funnel edge (sources converging on one
  ///    receiver), both computed exactly from route(), plus a
  ///    diameter-deep store-and-forward tail for the last slab.
  /// Pack/unpack compute (one flop per element each side) is excluded —
  /// add it via flop_time if comparing against simulated makespans.
  [[nodiscard]] double all_to_all(int p, double bytes,
                                  LinkContention model) const;

  /// The same exchange issued in naive ascending-peer order under link
  /// contention: all ranks inject toward the same destination in the same
  /// wave.  Under kPorts the hottest ejection port drains a whole wave
  /// after the last injection — about twice the scheduled wire time.
  /// Under kStoreForward the injection serialization and the hot
  /// receiver's funnel drain compound instead of overlapping (naive order
  /// oversubscribes the bisection edges toward each destination in turn).
  /// This is the cost the schedule removes (bench_redistribute's
  /// naive_order column).
  [[nodiscard]] double all_to_all_naive(
      int p, double bytes,
      LinkContention model = LinkContention::kPorts) const;

  /// The same exchange issued in lockstep round order
  /// (IssueOrder::kLockstep): each member sends to and then receives from
  /// its round partner before advancing, so the per-round message latency
  /// is *not* hidden behind the next round's sends — the price of the O(1)
  /// mailbox bound.  The hop terms are exact: the busiest member pays the
  /// sum of its hop counts to every peer (computed from the topology), one
  /// wire time per message under kNone/kPorts and one per hop under
  /// kStoreForward.  Valid for all three contention tiers (lockstep rounds
  /// never queue: by the time a member reuses a port or edge, its clock has
  /// already advanced past the busy window).
  [[nodiscard]] double all_to_all_lockstep(int p, double bytes,
                                           LinkContention model) const;

  /// Wire-plus-overhead time of the round-scheduled all_gather collective
  /// among p ranks, each contributing `bytes` (collectives.hpp all_gather):
  /// every ordered pair carries one `bytes` message through the same
  /// perfect-matching rounds as the transpose, so the closed forms coincide
  /// with all_to_all for every contention tier; only the payload is
  /// replicated rather than partitioned.  The receiver-side concatenation
  /// compute (one op per gathered element) is excluded — add it via
  /// flop_time when comparing against simulated makespans.
  [[nodiscard]] double all_gather(int p, double bytes,
                                  LinkContention model) const;

 private:
  [[nodiscard]] double ft() const { return cfg_.flop_time; }

  MachineConfig cfg_;
  int nprocs_;
};

}  // namespace kali

#include "metrics/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "machine/topology.hpp"
#include "support/check.hpp"

namespace kali {

namespace {
int log2i(int p) {
  KALI_CHECK(p >= 1 && (p & (p - 1)) == 0, "predictor: p must be 2^k");
  int k = 0;
  while ((1 << k) < p) {
    ++k;
  }
  return k;
}

/// The two serialization bottlenecks the store-and-forward simulator
/// produces for an all-pairs exchange on p ranks, computed exactly from
/// the deterministic routes:
///  * injection — per sender, messages sharing a first-hop edge serialize
///    on the sender's own out-edge clock; the heaviest such edge over all
///    senders.
///  * funnel — per receiver, messages crossing a shared later edge queue
///    in that receiver's ledger; the heaviest such edge over all
///    receivers.
struct SfLoads {
  int injection = 0;
  int funnel = 0;
};

SfLoads sf_transpose_loads(Topology topo, int p) {
  SfLoads loads;
  std::map<std::int64_t, int> edge_count;
  for (int a = 0; a < p; ++a) {
    edge_count.clear();
    for (int b = 0; b < p; ++b) {
      if (b == a) {
        continue;
      }
      ++edge_count[edge_id(a, first_hop(topo, p, a, b))];
    }
    for (const auto& [e, n] : edge_count) {
      loads.injection = std::max(loads.injection, n);
    }
  }
  for (int b = 0; b < p; ++b) {
    edge_count.clear();
    for (int a = 0; a < p; ++a) {
      if (a == b) {
        continue;
      }
      const std::vector<int> path = route(topo, p, a, b);
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        ++edge_count[edge_id(path[i], path[i + 1])];
      }
    }
    for (const auto& [e, n] : edge_count) {
      loads.funnel = std::max(loads.funnel, n);
    }
  }
  return loads;
}
}  // namespace

double Predictor::halo_exchange2(int nx, int ny, int px, int py) const {
  // Interior processor: 4 faces out, 4 in; sends overlap, one wire round.
  const int mx = nx / std::max(px, 1);
  const int my = ny / std::max(py, 1);
  const double pack = 2.0 * (mx + my) * 2.0 * ft();  // pack + unpack
  const double overheads =
      4.0 * (cfg_.send_overhead + cfg_.recv_overhead);
  // Grid neighbours sit 1-2 hypercube hops apart; the critical face is the
  // larger one.
  const double wire = cfg_.latency + cfg_.per_hop +
                      8.0 * std::max(mx, my) * cfg_.byte_time;
  return pack + overheads + wire;
}

double Predictor::halo_exchange2_split(int nx, int ny, int px, int py,
                                       double hidden_flops) const {
  // Same decomposition as halo_exchange2, but the wire round races the
  // interior compute placed between post and wait.
  const int mx = nx / std::max(px, 1);
  const int my = ny / std::max(py, 1);
  const double pack = 2.0 * (mx + my) * 2.0 * ft();
  const double overheads = 4.0 * (cfg_.send_overhead + cfg_.recv_overhead);
  const double wire = cfg_.latency + cfg_.per_hop +
                      8.0 * std::max(mx, my) * cfg_.byte_time;
  return pack + overheads + std::max(hidden_flops * ft(), wire);
}

double Predictor::halo_overlap_ratio2(int nx, int ny, int px, int py,
                                      double hidden_flops) const {
  const int mx = nx / std::max(px, 1);
  const int my = ny / std::max(py, 1);
  const double wire = cfg_.latency + cfg_.per_hop +
                      8.0 * std::max(mx, my) * cfg_.byte_time;
  if (wire <= 0.0) {
    return 0.0;
  }
  return std::min(hidden_flops * ft(), wire) / wire;
}

double Predictor::jacobi_iteration(int n, int p_side) const {
  const int m = n / std::max(p_side, 1);
  const double compute =
      ft() * (static_cast<double>(m + 2) * (m + 2)  // copy-in clone
              + 6.0 * m * m);                       // stencil
  if (p_side <= 1) {
    return ft() * (static_cast<double>(n) * n + 6.0 * n * n);
  }
  return compute + halo_exchange2(n, n, p_side, p_side);
}

double Predictor::jacobi_iteration_split(int n, int p_side) const {
  const int m = n / std::max(p_side, 1);
  if (p_side <= 1) {
    return jacobi_iteration(n, p_side);
  }
  // Copy-in and the boundary ring stay exposed; the interior rows (the
  // (m-2)^2 block at least one cell from every owned edge) hide the wire.
  const double interior = 6.0 * std::max(m - 2, 0) * std::max(m - 2, 0);
  const double boundary = 6.0 * (static_cast<double>(m) * m) - interior;
  const double exposed =
      ft() * (static_cast<double>(m + 2) * (m + 2) + boundary);
  return exposed + halo_exchange2_split(n, n, p_side, p_side, interior);
}

double Predictor::tri_solve(int n, int p) const {
  const int mloc = n / std::max(p, 1);
  if (p <= 1) {
    return ft() * 8.0 * n;  // Thomas
  }
  const int k = log2i(p);
  // Critical path through the fold: local reduction, k-1 merges, the root
  // Thomas, k-1 substitution levels, local substitution.  The fold's pair
  // messages travel one hypercube hop (ranks differ in a single bit).
  double t = ft() * (12.0 * mloc + 5.0 * mloc);  // stage 1 + local subst
  const double pair_msg = message(8 * 8, 1);     // 8 doubles
  const double sol_msg = message(2 * 8, 1);      // 2 doubles
  t += (k - 1) * (pair_msg + ft() * 48.0);       // merges
  t += pair_msg + ft() * 32.0;                   // root Thomas
  t += (k - 1) * (sol_msg + ft() * 10.0);        // substitution levels
  t += sol_msg;                                  // final pair delivery
  return t;
}

double Predictor::mtri_solve(int nsys, int n, int p) const {
  const int mloc = n / std::max(p, 1);
  if (p <= 1) {
    return nsys * ft() * 8.0 * n;
  }
  const int k = log2i(p);
  // Steady state: every global step a processor reduces one fresh system
  // (stage 1) and back-substitutes another, plus O(1) tree work; the
  // pipeline runs nsys + 2k steps.  Unlike the one-shot solver, message
  // latency is hidden behind the next system's stage-1 work, so only the
  // per-message software overheads stay on the critical path.
  const double per_step = ft() * (12.0 * mloc + 5.0 * mloc + 60.0) +
                          cfg_.send_overhead + cfg_.recv_overhead;
  return (nsys + 2.0 * k) * per_step + message(8 * 8, 1);
}

double Predictor::all_to_all(int p, double bytes,
                             LinkContention model) const {
  KALI_CHECK(p >= 1, "all_to_all: p must be positive");
  if (p <= 1) {
    return 0.0;
  }
  const int d = diameter(cfg_.topology, p);
  // Worst-separated pair bounds the one-off latency term.
  const double alpha = cfg_.latency + cfg_.per_hop * (d - 1);
  const double slab = bytes * cfg_.byte_time;
  const double per_msg = cfg_.send_overhead + cfg_.recv_overhead;
  switch (model) {
    case LinkContention::kNone:
      // Slabs overlap on infinitely parallel links: p-1 software overheads
      // back to back, one latency, and only the last slab's wire time
      // shows.
      return (p - 1) * per_msg + alpha + slab;
    case LinkContention::kPorts:
      // Round-structured: each of the p-1 rounds moves one slab per port,
      // and rounds pipeline — whichever of wire time and software overhead
      // is larger paces the rounds; the final slab's drain and latency are
      // paid once.
      return (p - 1) * std::max(slab, per_msg) + alpha + slab + per_msg;
    case LinkContention::kStoreForward: {
      // The busiest serialized edge paces the exchange; round order lets
      // the injection serialization and the funnel drain overlap fully, so
      // only the heavier of the two shows, plus a (d-1)-deep
      // store-and-forward tail for the last slab (its first wire time is
      // already inside the bottleneck drain).
      const SfLoads loads = sf_transpose_loads(cfg_.topology, p);
      const double paced = std::max(loads.injection, loads.funnel) *
                           std::max(slab, per_msg);
      return paced + (d - 1) * slab + alpha + (p - 1) * per_msg;
    }
  }
  KALI_FAIL("unknown link contention model");
}

double Predictor::all_to_all_naive(int p, double bytes,
                                   LinkContention model) const {
  KALI_CHECK(p >= 1, "all_to_all: p must be positive");
  KALI_CHECK(model != LinkContention::kNone,
             "all_to_all_naive: issue order only matters under contention");
  if (p <= 1) {
    return 0.0;
  }
  const int d = diameter(cfg_.topology, p);
  const double alpha = cfg_.latency + cfg_.per_hop * (d - 1);
  const double slab = bytes * cfg_.byte_time;
  const double per_msg = cfg_.send_overhead + cfg_.recv_overhead;
  if (model == LinkContention::kPorts) {
    // Ascending-peer issue: every rank's k-th injection targets ejection
    // port k, so the last port receives a whole wave at once and drains it
    // serially after its own injections finish — the wire term doubles.
    return 2.0 * (p - 1) * std::max(slab, per_msg) + alpha + slab + per_msg;
  }
  // Store-and-forward: all p-1 messages toward one destination launch in
  // the same wave, so the last destination's funnel drains after the
  // injection serialization instead of overlapping it.  The senders' busy
  // out-edges still spread the arrivals, so about half the thinner
  // resource's drain stays exposed on top of the scheduled cost.
  const SfLoads loads = sf_transpose_loads(cfg_.topology, p);
  const double paced = std::max(loads.injection, loads.funnel) *
                       std::max(slab, per_msg);
  const double exposed =
      0.5 * std::min(loads.injection, loads.funnel) * slab;
  return paced + exposed + (d - 1) * slab + alpha + (p - 1) * per_msg;
}

double Predictor::all_to_all_lockstep(int p, double bytes,
                                      LinkContention model) const {
  KALI_CHECK(p >= 1, "all_to_all: p must be positive");
  if (p <= 1) {
    return 0.0;
  }
  const double slab = bytes * cfg_.byte_time;
  const double per_msg = cfg_.send_overhead + cfg_.recv_overhead;
  // The busiest member's total hop count to all peers: lockstep exposes
  // every round's latency, so the per-round hop terms accumulate instead of
  // pipelining behind later sends.
  int hop_sum = 0;
  for (int i = 0; i < p; ++i) {
    int s = 0;
    for (int j = 0; j < p; ++j) {
      if (j != i) {
        s += hop_count(cfg_.topology, p, i, j);
      }
    }
    hop_sum = std::max(hop_sum, s);
  }
  const double base = (p - 1) * (per_msg + cfg_.latency) +
                      cfg_.per_hop * (hop_sum - (p - 1));
  // Wire time: once per message at the ejection port (kNone and kPorts are
  // indistinguishable in lockstep — ports are idle again by the time a
  // member's next round begins), once per traversed edge for
  // store-and-forward.
  const double wire = model == LinkContention::kStoreForward
                          ? hop_sum * slab
                          : (p - 1) * slab;
  return base + wire;
}

double Predictor::all_gather(int p, double bytes, LinkContention model) const {
  // Wire-identical to the scheduled transpose: every ordered pair carries
  // one `bytes` message through the same perfect-matching rounds.
  return all_to_all(p, bytes, model);
}

double Predictor::adi_iteration(int n, int px, int py, bool pipelined) const {
  const int mx = n / std::max(px, 1);
  const int my = n / std::max(py, 1);
  // Residual: copy-in + 10-flop stencil + halo; update: 1 flop/point.
  double t = ft() * (static_cast<double>(mx + 2) * (my + 2) +
                     11.0 * static_cast<double>(mx) * my);
  if (px * py > 1) {
    t += halo_exchange2(n, n, px, py);
  }
  if (pipelined) {
    t += mtri_solve(mx, n, py) + mtri_solve(my, n, px);
  } else {
    t += mx * tri_solve(n, py) + my * tri_solve(n, px);
  }
  return t;
}

}  // namespace kali

#include "kernels/reduce_block.hpp"

#include "support/check.hpp"

namespace kali {

void reduce_block(std::span<double> b, std::span<double> a, std::span<double> c,
                  std::span<double> f) {
  const std::size_t m = a.size();
  KALI_CHECK(m >= 2, "reduce_block needs at least 2 rows");
  KALI_CHECK(b.size() == m && c.size() == m && f.size() == m,
             "reduce_block: size mismatch");

  // Forward sweep (paper: rows l+2 .. u): eliminate the coupling of row j to
  // row j-1; the fill-in column is x_0, accumulated in b[j].  Row 1 already
  // couples to x_0 through its original b[1].
  for (std::size_t j = 2; j < m; ++j) {
    KALI_CHECK(a[j - 1] != 0.0, "reduce_block: zero pivot (forward)");
    const double factor = b[j] / a[j - 1];
    a[j] -= factor * c[j - 1];
    f[j] -= factor * f[j - 1];
    b[j] = -factor * b[j - 1];  // fill-in: coupling to x_0
  }

  // Backward sweep (paper: rows u-2 .. l): eliminate the coupling of row j
  // to row j+1; the fill-in column is x_{m-1}, accumulated in c[j].  Row m-2
  // already couples to x_{m-1} through its original c[m-2].
  for (std::size_t j = m - 2; j-- > 0;) {
    KALI_CHECK(a[j + 1] != 0.0, "reduce_block: zero pivot (backward)");
    const double factor = c[j] / a[j + 1];
    f[j] -= factor * f[j + 1];
    c[j] = -factor * c[j + 1];  // fill-in: coupling to x_{m-1}
    if (j == 0) {
      // Row 1's x_0 coefficient is b[1]: it folds into row 0's diagonal.
      a[0] -= factor * b[1];
    } else {
      b[j] -= factor * b[j + 1];
    }
  }
}

void back_substitute_block(std::span<const double> b, std::span<const double> a,
                           std::span<const double> c, std::span<const double> f,
                           double x0, double xm1, std::span<double> x) {
  const std::size_t m = a.size();
  KALI_CHECK(m >= 2, "back_substitute_block needs at least 2 rows");
  KALI_CHECK(x.size() == m, "back_substitute_block: size mismatch");
  x[0] = x0;
  x[m - 1] = xm1;
  for (std::size_t j = 1; j + 1 < m; ++j) {
    KALI_CHECK(a[j] != 0.0, "back_substitute_block: zero diagonal");
    x[j] = (f[j] - b[j] * x0 - c[j] * xm1) / a[j];
  }
}

}  // namespace kali

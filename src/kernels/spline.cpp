#include "kernels/spline.hpp"

#include <cmath>

#include "kernels/thomas.hpp"
#include "kernels/tri.hpp"
#include "machine/context.hpp"
#include "support/check.hpp"

namespace kali {

std::vector<double> spline_moments(std::span<const double> y, double h) {
  const std::size_t n = y.size();
  KALI_CHECK(n >= 3, "spline needs at least 3 knots");
  KALI_CHECK(h > 0.0, "knot spacing must be positive");
  std::vector<double> b(n, 1.0), a(n, 4.0), c(n, 1.0), f(n, 0.0), m(n, 0.0);
  const double s = 6.0 / (h * h);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    f[i] = s * (y[i + 1] - 2.0 * y[i] + y[i - 1]);
  }
  // Natural boundary: M[0] = M[n-1] = 0.
  a[0] = 1.0;
  c[0] = 0.0;
  a[n - 1] = 1.0;
  b[n - 1] = 0.0;
  thomas_solve(b, a, c, f, m);
  return m;
}

double spline_eval(std::span<const double> y, std::span<const double> m,
                   double x0, double h, double x) {
  const std::size_t n = y.size();
  KALI_CHECK(m.size() == n, "spline_eval: size mismatch");
  const double t = (x - x0) / h;
  auto i = static_cast<std::ptrdiff_t>(std::floor(t));
  i = std::max<std::ptrdiff_t>(0, std::min<std::ptrdiff_t>(i, static_cast<std::ptrdiff_t>(n) - 2));
  const auto u = static_cast<std::size_t>(i);
  const double xa = x0 + static_cast<double>(i) * h;
  const double A = (xa + h - x) / h;
  const double B = (x - xa) / h;
  return A * y[u] + B * y[u + 1] +
         ((A * A * A - A) * m[u] + (B * B * B - B) * m[u + 1]) * (h * h) / 6.0;
}

void spline_fit(const DistArray1<double>& y, double h, DistArray1<double>& moments) {
  KALI_CHECK(y.extent(0) == moments.extent(0), "spline_fit: extent mismatch");
  if (!moments.participating()) {
    return;
  }
  Context& ctx = moments.context();
  const int n = y.extent(0);
  KALI_CHECK(n >= 3, "spline needs at least 3 knots");
  const ProcView& pv = moments.view();

  // Halo'd copy of y for the second-difference right-hand side.
  DistArray1<double> yh(ctx, pv, {n}, {DimDist::block_dist()}, {1});
  yh.fill([&](std::array<int, 1> g) { return y.at(g); });
  yh.exchange_halo();

  DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
  DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
  DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
  DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
  const double s = 6.0 / (h * h);
  b.fill([&](std::array<int, 1> g) { return g[0] == n - 1 ? 0.0 : 1.0; });
  c.fill([&](std::array<int, 1> g) { return g[0] == 0 ? 0.0 : 1.0; });
  a.fill([&](std::array<int, 1> g) {
    return (g[0] == 0 || g[0] == n - 1) ? 1.0 : 4.0;
  });
  f.fill([&](std::array<int, 1> g) {
    const int i = g[0];
    if (i == 0 || i == n - 1) {
      return 0.0;
    }
    return s * (yh.at_halo({i + 1}) - 2.0 * yh.at_halo({i}) + yh.at_halo({i - 1}));
  });
  ctx.compute(4.0 * moments.local_count(0));
  tri(b, a, c, f, moments);
}

}  // namespace kali

// Radix-2 complex FFT — one of the paper's named one-dimensional kernels
// ("cubic spline fitting routines, Fast Fourier Transforms, and so forth").
//
// The sequential kernel below is composed into a distributed 2-D FFT in the
// tensor_fft example: row FFTs under one distribution, a redistribute
// (transpose), then row FFTs again — the canonical tensor product pattern.
#pragma once

#include <complex>
#include <span>

namespace kali {

/// Approximate flops of an n-point complex FFT: kFftFlopsFactor * n * log2 n.
inline constexpr double kFftFlopsFactor = 5.0;

/// In-place radix-2 FFT; n must be a power of two.  The inverse transform
/// includes the 1/n normalization.
void fft_inplace(std::span<std::complex<double>> data, bool inverse = false);

/// Modeled flop count for charging the cost model.
double fft_flops(int n);

}  // namespace kali

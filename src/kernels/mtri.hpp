// Pipelined multi-system tridiagonal solver — the paper's `mtrix` parsub
// (Listing 6) and its constant-coefficient variants `mtrixc`/`mtriyc` used
// by the pipelined ADI of Listing 8.
//
// The m systems are staggered through the substructured pipeline: at global
// step t, system j executes pipeline position t - j (when in range).  Every
// processor therefore does stage-1 work on a fresh system at every step
// while simultaneously serving its tree levels for earlier systems — "more
// of the processors are kept busy" (paper §3).
#pragma once

#include "machine/trace.hpp"
#include "runtime/dist_array.hpp"

namespace kali {

struct MtriOptions {
  /// Optional activity recording, pre-sized to (mtri_trace_steps, p).
  ActivityTrace* trace = nullptr;
};

/// Number of global pipeline steps for `nsys` systems on p processors.
int mtri_trace_steps(int nsys, int p);

/// Solve the `nsys` tridiagonal systems stacked along dimension
/// `system_dim` (which must be a star dim) of the 2-D arrays; the other
/// dimension is the unknown index and must be block-distributed over a 1-D
/// view shared by all five arrays.  Writes X.
void mtri(const DistArray2<double>& B, const DistArray2<double>& A,
          const DistArray2<double>& C, const DistArray2<double>& F,
          DistArray2<double>& X, int system_dim, const MtriOptions& opts = {});

/// Constant-coefficient variant (`mtrixc`/`mtriyc` of the paper — one name
/// suffices here because `system_dim` selects the orientation).
void mtri_const(double lo, double diag, double up, const DistArray2<double>& F,
                DistArray2<double>& X, int system_dim,
                const MtriOptions& opts = {});

}  // namespace kali

// Per-system state machine of the substructured ("spike"-variant)
// tridiagonal algorithm of paper §3, shared by the one-shot solver (`tri`,
// Listing 4) and the pipelined multi-system solver (`mtri`, Listing 6).
//
// The data-flow graph (Figure 3) is a binary reduction tree followed by its
// mirror-image substitution tree, mapped onto the processor array by the
// fold/unshuffle mapping of Figure 5: the merge of level sigma runs on
// processors whose view index is a multiple of 2^(sigma-1); the right-hand
// source pair travels a distance of 2^(sigma-2) (a single hypercube hop).
//
// Pipeline positions for p = 2^k processors (p > 1):
//   pos 0            stage-1 local reduction (all processors)   'R'
//   pos 1 .. k-1     4-row merge, level sigma = pos+1           'r'
//   pos k            final 4-row Thomas solve on processor 0    'T'
//   pos k+1 .. 2k-1  substitution, level sigma = 2k-pos+1       'b'
//   pos 2k           local interior substitution (all)          'B'
// For p == 1 there is a single position: a local Thomas solve.
//
// Every position consumes only messages sent at the previous position, so
// any interleaving of positions across systems (the Listing 6 pipeline) is
// deadlock-free.
#pragma once

#include <array>
#include <vector>

#include "kernels/reduce_block.hpp"
#include "kernels/thomas.hpp"
#include "machine/message.hpp"  // kKernelTagBase (reserved-tag registry)
#include "machine/trace.hpp"
#include "runtime/proc_view.hpp"

namespace kali::detail {

// Per-system tags are kTagTriBase + 2 * sys_tag (+1); the base itself is
// registered in the kernel band of machine/message.hpp.
static_assert(kTagTriBase >= kKernelTagBase && kTagTriBase < kCollectiveTagBase);
inline constexpr double kSubstFlopsPerRow = 5.0;

/// log2 of a power of two (checked).
int checked_log2(int p);

class TriPipeline {
 public:
  /// `sys_tag` must be unique per in-flight system (message namespace).
  TriPipeline(Context& ctx, const ProcView& pv, int sys_tag);

  /// Load this member's rows (consumed).  Call before running position 0.
  void set_local(std::vector<double> b, std::vector<double> a,
                 std::vector<double> c, std::vector<double> f);

  /// Number of pipeline positions (2k+1, or 1 for a single processor).
  [[nodiscard]] int positions() const { return p_ == 1 ? 1 : 2 * k_ + 1; }

  /// Execute pipeline position q (0-based).  Collective in the staggered
  /// sense: every member must eventually run every position in order.
  /// If `trace` is non-null, activity is marked at row `trace_step`.
  void run_position(int q, ActivityTrace* trace = nullptr, int trace_step = 0);

  /// Local solution values (valid after the final position).
  [[nodiscard]] const std::vector<double>& solution() const { return x_; }

  [[nodiscard]] bool member() const { return member_; }

 private:
  struct Pair {  // two boundary rows, each (b, a, c, f)
    std::array<double, 8> v{};
  };

  void send_pair(int peer_index);
  Pair recv_pair(int peer_index);
  void send_sol(int peer_index, double lo, double hi);
  std::array<double, 2> recv_sol(int peer_index);
  void mark(ActivityTrace* trace, int step, char symbol) const;

  Context* ctx_;
  ProcView pv_;
  int p_ = 1;
  int me_ = 0;  // linear index within the view
  int k_ = 0;
  int tag_pair_;
  int tag_sol_;
  bool member_ = false;

  int mloc_ = 0;
  std::vector<double> b_, a_, c_, f_;  // stage-1 reduced local rows
  Pair pair_{};                        // current boundary pair
  std::vector<std::array<double, 16>> saved_;  // merge blocks per level
  double xl_ = 0.0, xu_ = 0.0;                 // current pair solution
  std::vector<double> x_;                      // local solution
};

}  // namespace kali::detail

#include "kernels/fft.hpp"

#include <cmath>
#include <numbers>

#include "support/check.hpp"

namespace kali {

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  KALI_CHECK(n >= 1 && (n & (n - 1)) == 0, "fft: length must be 2^k");
  if (n == 1) {
    return;
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& z : data) {
      z *= inv_n;
    }
  }
}

double fft_flops(int n) {
  if (n <= 1) {
    return 0.0;
  }
  return kFftFlopsFactor * static_cast<double>(n) *
         std::log2(static_cast<double>(n));
}

}  // namespace kali

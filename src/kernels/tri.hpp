// Parallel substructured tridiagonal solver — the paper's `tri` parsub
// (Listing 4) with the unshuffle communication of Listing 5 / Figure 5.
#pragma once

#include "machine/trace.hpp"
#include "runtime/dist_array.hpp"

namespace kali {

struct TriOptions {
  /// Optional Figure 3/5 activity recording; must be pre-sized to
  /// (tri_trace_steps(p), p) by the caller.
  ActivityTrace* trace = nullptr;
};

/// Number of activity-trace steps `tri` produces on p = 2^k processors.
int tri_trace_steps(int p);

/// Solve A x = f where row i of A is (b[i], a[i], c[i]); all five arrays are
/// 1-D, block-distributed over the same 1-D processor view (b[0] and c[n-1]
/// are ignored).  Inputs are untouched.  Collective over the view; each
/// member must hold at least two rows.  The system must factor without
/// pivoting (paper assumption), e.g. diagonal dominance.
void tri(const DistArray1<double>& b, const DistArray1<double>& a,
         const DistArray1<double>& c, const DistArray1<double>& f,
         DistArray1<double>& x, const TriOptions& opts = {});

/// Constant-coefficient variant (the paper's `tric`, used by ADI):
/// lo x[i-1] + diag x[i] + up x[i+1] = f[i].
void tric(double lo, double diag, double up, const DistArray1<double>& f,
          DistArray1<double>& x, const TriOptions& opts = {});

}  // namespace kali

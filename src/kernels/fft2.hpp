// Distributed 2-D FFT — the canonical transpose-based tensor product
// algorithm: 1-D FFTs along the locally-held dimension, a redistribution
// (the "distributed transpose"), then 1-D FFTs along the other dimension.
//
// This is the composition pattern of the paper applied to its other named
// 1-D kernel: "Fast Fourier Transforms, and so forth" (§3).
#pragma once

#include <complex>

#include "runtime/dist_array.hpp"

namespace kali {

using Complex = std::complex<double>;

/// Apply 1-D FFTs along dimension `dim` of `a`, which must be a star
/// (locally complete) dimension; the other dimension indexes the
/// transforms.  In place.  Collective only in cost accounting.
void fft_lines(DistArray2<Complex>& a, int dim, bool inverse);

/// Full 2-D transform of the data in `rows` (dist (block, *)): row FFTs,
/// redistribute into `cols` (dist (*, block)), column FFTs.  On return the
/// frequency-domain data lives in `cols`; `rows` holds the row-transformed
/// intermediate.  Collective over both views.
void fft2_forward(Context& ctx, DistArray2<Complex>& rows,
                  DistArray2<Complex>& cols);

/// Inverse of fft2_forward: consumes `cols` (frequency domain), returns the
/// spatial data in `rows`.
void fft2_inverse(Context& ctx, DistArray2<Complex>& cols,
                  DistArray2<Complex>& rows);

}  // namespace kali

#include "kernels/tri_pipeline.hpp"

#include "machine/context.hpp"
#include "support/check.hpp"

namespace kali::detail {

int checked_log2(int p) {
  KALI_CHECK(p >= 1 && (p & (p - 1)) == 0, "processor count must be 2^k");
  int k = 0;
  while ((1 << k) < p) {
    ++k;
  }
  return k;
}

TriPipeline::TriPipeline(Context& ctx, const ProcView& pv, int sys_tag)
    : ctx_(&ctx),
      pv_(pv),
      tag_pair_(kTagTriBase + 2 * sys_tag),
      tag_sol_(kTagTriBase + 2 * sys_tag + 1) {
  KALI_CHECK(pv.ndims() == 1, "tri: view must be one-dimensional");
  p_ = pv.count();
  k_ = checked_log2(p_);
  member_ = pv.contains(ctx.rank());
  if (member_) {
    me_ = pv.linear_index_of(ctx.rank());
  }
}

void TriPipeline::set_local(std::vector<double> b, std::vector<double> a,
                            std::vector<double> c, std::vector<double> f) {
  if (!member_) {
    return;
  }
  mloc_ = static_cast<int>(a.size());
  KALI_CHECK(mloc_ >= 2 || p_ == 1,
             "tri: each processor needs at least 2 rows");
  KALI_CHECK(b.size() == a.size() && c.size() == a.size() && f.size() == a.size(),
             "tri: size mismatch");
  b_ = std::move(b);
  a_ = std::move(a);
  c_ = std::move(c);
  f_ = std::move(f);
  x_.assign(static_cast<std::size_t>(mloc_), 0.0);
  saved_.assign(static_cast<std::size_t>(k_ > 1 ? k_ - 1 : 0), {});
}

void TriPipeline::send_pair(int peer_index) {
  ctx_->send(pv_.rank_of1(peer_index), tag_pair_, pair_.v);
}

TriPipeline::Pair TriPipeline::recv_pair(int peer_index) {
  Pair in;
  in.v = ctx_->recv<std::array<double, 8>>(pv_.rank_of1(peer_index), tag_pair_);
  return in;
}

void TriPipeline::send_sol(int peer_index, double lo, double hi) {
  ctx_->send(pv_.rank_of1(peer_index), tag_sol_, std::array<double, 2>{lo, hi});
}

std::array<double, 2> TriPipeline::recv_sol(int peer_index) {
  return ctx_->recv<std::array<double, 2>>(pv_.rank_of1(peer_index), tag_sol_);
}

void TriPipeline::mark(ActivityTrace* trace, int step, char symbol) const {
  if (trace != nullptr) {
    trace->mark(step, me_, symbol);
  }
}

void TriPipeline::run_position(int q, ActivityTrace* trace, int trace_step) {
  if (!member_) {
    return;
  }
  KALI_CHECK(q >= 0 && q < positions(), "bad pipeline position");

  if (p_ == 1) {  // degenerate: plain sequential solve
    thomas_solve(b_, a_, c_, f_, x_);
    ctx_->compute(kThomasFlopsPerRow * mloc_);
    mark(trace, trace_step, 'T');
    return;
  }

  if (q == 0) {
    // Stage 1: local two-sided reduction; odd members mail their pair left.
    reduce_block(b_, a_, c_, f_);
    ctx_->compute(kReduceFlopsPerRow * mloc_);
    const auto lo = static_cast<std::size_t>(0);
    const auto hi = static_cast<std::size_t>(mloc_ - 1);
    pair_.v = {b_[lo], a_[lo], c_[lo], f_[lo], b_[hi], a_[hi], c_[hi], f_[hi]};
    if (me_ % 2 == 1) {
      send_pair(me_ - 1);
    }
    mark(trace, trace_step, 'R');
    return;
  }

  if (q >= 1 && q <= k_ - 1) {
    // Merge level sigma = q+1 on members = 0 (mod 2^(sigma-1)).
    const int sigma = q + 1;
    const int stride = 1 << (sigma - 1);
    const int half = 1 << (sigma - 2);
    if (me_ % stride != 0) {
      return;
    }
    Pair right = recv_pair(me_ + half);
    // 4 consecutive rows of the current reduced system.
    std::array<double, 4> b4{pair_.v[0], pair_.v[4], right.v[0], right.v[4]};
    std::array<double, 4> a4{pair_.v[1], pair_.v[5], right.v[1], right.v[5]};
    std::array<double, 4> c4{pair_.v[2], pair_.v[6], right.v[2], right.v[6]};
    std::array<double, 4> f4{pair_.v[3], pair_.v[7], right.v[3], right.v[7]};
    reduce_block(b4, a4, c4, f4);
    ctx_->compute(kReduceFlopsPerRow * 4.0);
    auto& sv = saved_[static_cast<std::size_t>(sigma - 2)];
    for (std::size_t i = 0; i < 4; ++i) {
      sv[i] = b4[i];
      sv[4 + i] = a4[i];
      sv[8 + i] = c4[i];
      sv[12 + i] = f4[i];
    }
    pair_.v = {b4[0], a4[0], c4[0], f4[0], b4[3], a4[3], c4[3], f4[3]};
    if (me_ % (2 * stride) != 0) {
      send_pair(me_ - stride);
    }
    mark(trace, trace_step, 'r');
    return;
  }

  if (q == k_) {
    // Root: 4-row Thomas solve on member 0 (pair from member p/2 arrived
    // from the last merge level, or from stage 1 when p == 2).
    const int half = 1 << (k_ - 1);
    if (me_ != 0) {
      return;
    }
    Pair right = recv_pair(half);
    std::array<double, 4> b4{pair_.v[0], pair_.v[4], right.v[0], right.v[4]};
    std::array<double, 4> a4{pair_.v[1], pair_.v[5], right.v[1], right.v[5]};
    std::array<double, 4> c4{pair_.v[2], pair_.v[6], right.v[2], right.v[6]};
    std::array<double, 4> f4{pair_.v[3], pair_.v[7], right.v[3], right.v[7]};
    std::array<double, 4> x4{};
    thomas_solve(b4, a4, c4, f4, x4);
    ctx_->compute(kThomasFlopsPerRow * 4.0);
    xl_ = x4[0];
    xu_ = x4[1];
    send_sol(half, x4[2], x4[3]);
    mark(trace, trace_step, 'T');
    return;
  }

  if (q <= 2 * k_ - 1) {
    // Substitution level sigma = 2k - q + 1 on members = 0 (mod 2^(sigma-1)).
    const int sigma = 2 * k_ - q + 1;
    const int stride = 1 << (sigma - 1);
    const int half = 1 << (sigma - 2);
    if (me_ % stride != 0) {
      return;
    }
    if (me_ % (2 * stride) != 0) {
      auto sol = recv_sol(me_ - stride);
      xl_ = sol[0];
      xu_ = sol[1];
    }
    const auto& sv = saved_[static_cast<std::size_t>(sigma - 2)];
    std::array<double, 4> x4{};
    back_substitute_block(std::span<const double>(sv.data(), 4),
                          std::span<const double>(sv.data() + 4, 4),
                          std::span<const double>(sv.data() + 8, 4),
                          std::span<const double>(sv.data() + 12, 4), xl_, xu_,
                          x4);
    ctx_->compute(kSubstFlopsPerRow * 2.0);
    // Left child keeps (xl, x4[1]); right child gets (x4[2], xu).
    send_sol(me_ + half, x4[2], xu_);
    xu_ = x4[1];
    mark(trace, trace_step, 'b');
    return;
  }

  // Final position: local interior substitution on every member.
  KALI_CHECK(q == 2 * k_, "bad position");
  if (me_ % 2 == 1) {
    auto sol = recv_sol(me_ - 1);
    xl_ = sol[0];
    xu_ = sol[1];
  }
  back_substitute_block(b_, a_, c_, f_, xl_, xu_, x_);
  ctx_->compute(kSubstFlopsPerRow * static_cast<double>(mloc_));
  mark(trace, trace_step, 'B');
}

}  // namespace kali::detail

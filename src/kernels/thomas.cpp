#include "kernels/thomas.hpp"

#include <vector>

#include "support/check.hpp"

namespace kali {

void thomas_solve(std::span<const double> b, std::span<const double> a,
                  std::span<const double> c, std::span<const double> f,
                  std::span<double> x) {
  const std::size_t n = a.size();
  KALI_CHECK(n >= 1, "empty system");
  KALI_CHECK(b.size() == n && c.size() == n && f.size() == n && x.size() == n,
             "thomas: size mismatch");
  std::vector<double> cp(n), fp(n);
  KALI_CHECK(a[0] != 0.0, "thomas: zero pivot");
  cp[0] = c[0] / a[0];
  fp[0] = f[0] / a[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = a[i] - b[i] * cp[i - 1];
    KALI_CHECK(denom != 0.0, "thomas: zero pivot");
    cp[i] = c[i] / denom;
    fp[i] = (f[i] - b[i] * fp[i - 1]) / denom;
  }
  x[n - 1] = fp[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = fp[i] - cp[i] * x[i + 1];
  }
}

void thomas_solve_const(double lo, double diag, double up,
                        std::span<const double> f, std::span<double> x) {
  const std::size_t n = f.size();
  std::vector<double> b(n, lo), a(n, diag), c(n, up);
  thomas_solve(b, a, c, f, x);
}

void thomas_solve_strided(Strided<const double> b, Strided<const double> a,
                          Strided<const double> c, Strided<const double> f,
                          Strided<double> x) {
  const int n = a.n;
  KALI_CHECK(b.n == n && c.n == n && f.n == n && x.n == n,
             "thomas: size mismatch");
  std::vector<double> bb(static_cast<std::size_t>(n)), aa(bb.size()),
      cc(bb.size()), ff(bb.size()), xx(bb.size());
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    bb[u] = b[i];
    aa[u] = a[i];
    cc[u] = c[i];
    ff[u] = f[i];
  }
  thomas_solve(bb, aa, cc, ff, xx);
  for (int i = 0; i < n; ++i) {
    x[i] = xx[static_cast<std::size_t>(i)];
  }
}

}  // namespace kali

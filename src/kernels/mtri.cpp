#include "kernels/mtri.hpp"

#include <optional>

#include "kernels/tri_pipeline.hpp"
#include "machine/context.hpp"
#include "support/check.hpp"

namespace kali {

namespace {

std::vector<double> to_vector(Strided<const double> s) {
  std::vector<double> v(static_cast<std::size_t>(s.n));
  for (int i = 0; i < s.n; ++i) {
    v[static_cast<std::size_t>(i)] = s[i];
  }
  return v;
}

struct MtriShape {
  int system_dim;
  int solve_dim;
  int nsys;
};

MtriShape check_shape(const DistArray2<double>& F, const DistArray2<double>& X,
                      int system_dim) {
  KALI_CHECK(system_dim == 0 || system_dim == 1, "mtri: bad system_dim");
  const int solve_dim = 1 - system_dim;
  KALI_CHECK(F.dist_kind(system_dim) == DistKind::kStar,
             "mtri: system dim must be undistributed (*)");
  KALI_CHECK(F.dist_kind(solve_dim) == DistKind::kBlock,
             "mtri: solve dim must be block distributed");
  KALI_CHECK(F.view() == X.view(), "mtri: arrays on different views");
  KALI_CHECK(F.extent(0) == X.extent(0) && F.extent(1) == X.extent(1),
             "mtri: extent mismatch");
  return {system_dim, solve_dim, F.extent(system_dim)};
}

/// Shared pipelined driver.  `load(j)` returns the four local coefficient
/// vectors (b, a, c, f) for system j.
template <class Load>
void run_pipelined(DistArray2<double>& X, const MtriShape& shape,
                   const MtriOptions& opts, Load load) {
  if (!X.participating()) {
    return;
  }
  Context& ctx = X.context();
  const ProcView& pv = X.view();
  const int p = pv.count();
  const int nsys = shape.nsys;

  std::vector<std::optional<detail::TriPipeline>> pipes(
      static_cast<std::size_t>(nsys));
  const int depth = detail::TriPipeline(ctx, pv, 0).positions();
  const int steps = nsys + depth - 1;
  (void)p;

  for (int t = 0; t < steps; ++t) {
    // Systems enter in order; each runs position t - j this step.
    for (int j = std::max(0, t - depth + 1); j <= std::min(t, nsys - 1); ++j) {
      const auto uj = static_cast<std::size_t>(j);
      const int q = t - j;
      if (q == 0) {
        pipes[uj].emplace(ctx, pv, /*sys_tag=*/j);
        auto [b, a, c, f] = load(j);
        pipes[uj]->set_local(std::move(b), std::move(a), std::move(c),
                             std::move(f));
      }
      pipes[uj]->run_position(q, opts.trace, t);
      if (q == depth - 1) {
        // Drain: write the solution and free the state.
        auto x = X.fix(shape.system_dim, j);
        auto xs = x.local_strided();
        const auto& sol = pipes[uj]->solution();
        KALI_CHECK(static_cast<int>(sol.size()) == xs.n, "mtri: solution size");
        for (int i = 0; i < xs.n; ++i) {
          xs[i] = sol[static_cast<std::size_t>(i)];
        }
        pipes[uj].reset();
      }
    }
  }
}

}  // namespace

int mtri_trace_steps(int nsys, int p) {
  KALI_CHECK(nsys >= 1, "mtri: need at least one system");
  const int depth = p == 1 ? 1 : 2 * detail::checked_log2(p) + 1;
  return nsys + depth - 1;
}

void mtri(const DistArray2<double>& B, const DistArray2<double>& A,
          const DistArray2<double>& C, const DistArray2<double>& F,
          DistArray2<double>& X, int system_dim, const MtriOptions& opts) {
  const MtriShape shape = check_shape(F, X, system_dim);
  run_pipelined(X, shape, opts, [&](int j) {
    return std::tuple{to_vector(B.fix(system_dim, j).local_strided()),
                      to_vector(A.fix(system_dim, j).local_strided()),
                      to_vector(C.fix(system_dim, j).local_strided()),
                      to_vector(F.fix(system_dim, j).local_strided())};
  });
}

void mtri_const(double lo, double diag, double up, const DistArray2<double>& F,
                DistArray2<double>& X, int system_dim,
                const MtriOptions& opts) {
  const MtriShape shape = check_shape(F, X, system_dim);
  run_pipelined(X, shape, opts, [&](int j) {
    auto f = to_vector(F.fix(system_dim, j).local_strided());
    const std::size_t m = f.size();
    return std::tuple{std::vector<double>(m, lo), std::vector<double>(m, diag),
                      std::vector<double>(m, up), std::move(f)};
  });
}

}  // namespace kali

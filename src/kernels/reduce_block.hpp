// The paper's `reduce` routine: two-sided elimination of a block of rows of
// a tridiagonal system (Figures 1 and 2).
//
// Given rows 0..m-1 of a tridiagonal system (each row i:
// b[i] x_{i-1} + a[i] x_i + c[i] x_{i+1} = f[i], indices relative to the
// block; b[0] couples to the row left of the block, c[m-1] to the right),
// eliminate the sub-diagonal forward from row 2 and the super-diagonal
// backward from row m-2.  In place, with the fill-in reusing b/c storage:
//
//   row 0     : b[0] x_left + a[0] x_0 + c[0] x_{m-1}     = f[0]
//   row m-1   : b[m-1] x_0  + a[m-1] x_{m-1} + c[m-1] x_right = f[m-1]
//   rows 1..m-2: b[j] x_0   + a[j] x_j + c[j] x_{m-1}     = f[j]
//
// Rows 0 and m-1 are the block's boundary pair: over all blocks, the pairs
// form a tridiagonal system of 2p equations (Figure 1's highlighted rows).
// The interior rows give the Figure 4 substitution formulas.
#pragma once

#include <span>

namespace kali {

/// Approximate flops per row of reduce_block (two sweeps).
inline constexpr double kReduceFlopsPerRow = 12.0;

/// Two-sided block elimination, in place.  Requires m >= 2 and a
/// factorization-stable system (e.g. diagonally dominant).
void reduce_block(std::span<double> b, std::span<double> a,
                  std::span<double> c, std::span<double> f);

/// Figure 4: given the boundary solutions x0 and xm1 of a reduced block,
/// fill the interior x[1..m-2] (x[0] and x[m-1] are also written).
void back_substitute_block(std::span<const double> b, std::span<const double> a,
                           std::span<const double> c, std::span<const double> f,
                           double x0, double xm1, std::span<double> x);

}  // namespace kali

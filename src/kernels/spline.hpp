// Natural cubic spline fitting — the second of the paper's named 1-D
// kernels.  The distributed variant assembles the (1, 4, 1) moment system
// and solves it with the substructured parallel solver, exactly the
// composition the paper advocates: 1-D kernels as distributed procedures.
#pragma once

#include <span>
#include <vector>

#include "runtime/dist_array.hpp"

namespace kali {

/// Second derivatives ("moments") M of the natural cubic spline through
/// (x0 + i*h, y[i]), i = 0..n-1.  M[0] = M[n-1] = 0.
std::vector<double> spline_moments(std::span<const double> y, double h);

/// Evaluate the spline at x (x0 is the first knot's abscissa).
double spline_eval(std::span<const double> y, std::span<const double> m,
                   double x0, double h, double x);

/// Distributed spline fit: y and moments share a 1-D block distribution;
/// the moment system is solved with kali::tri.  Collective over the view.
void spline_fit(const DistArray1<double>& y, double h, DistArray1<double>& moments);

}  // namespace kali

#include "kernels/tri.hpp"

#include "kernels/tri_pipeline.hpp"
#include "machine/context.hpp"
#include "support/check.hpp"

namespace kali {

namespace {

std::vector<double> to_vector(Strided<const double> s) {
  std::vector<double> v(static_cast<std::size_t>(s.n));
  for (int i = 0; i < s.n; ++i) {
    v[static_cast<std::size_t>(i)] = s[i];
  }
  return v;
}

void check_conforming(const DistArray1<double>& a, const DistArray1<double>& x) {
  KALI_CHECK(a.extent(0) == x.extent(0), "tri: extent mismatch");
  KALI_CHECK(a.view() == x.view(), "tri: arrays on different views");
  KALI_CHECK(a.dist_kind(0) == DistKind::kBlock && x.dist_kind(0) == DistKind::kBlock,
             "tri: arrays must be block distributed");
}

void run_pipeline_to_completion(detail::TriPipeline& pipe,
                                const TriOptions& opts,
                                DistArray1<double>& x) {
  if (!pipe.member()) {
    return;
  }
  for (int q = 0; q < pipe.positions(); ++q) {
    pipe.run_position(q, opts.trace, q);
  }
  const auto& sol = pipe.solution();
  auto xs = x.local_strided();
  KALI_CHECK(static_cast<int>(sol.size()) == xs.n, "tri: solution size");
  for (int i = 0; i < xs.n; ++i) {
    xs[i] = sol[static_cast<std::size_t>(i)];
  }
}

}  // namespace

int tri_trace_steps(int p) {
  if (p == 1) {
    return 1;
  }
  return 2 * detail::checked_log2(p) + 1;
}

void tri(const DistArray1<double>& b, const DistArray1<double>& a,
         const DistArray1<double>& c, const DistArray1<double>& f,
         DistArray1<double>& x, const TriOptions& opts) {
  check_conforming(a, x);
  check_conforming(b, x);
  check_conforming(c, x);
  check_conforming(f, x);
  if (!x.participating()) {
    return;
  }
  Context& ctx = x.context();
  detail::TriPipeline pipe(ctx, x.view(), /*sys_tag=*/0);
  pipe.set_local(to_vector(b.local_strided()), to_vector(a.local_strided()),
                 to_vector(c.local_strided()), to_vector(f.local_strided()));
  run_pipeline_to_completion(pipe, opts, x);
}

void tric(double lo, double diag, double up, const DistArray1<double>& f,
          DistArray1<double>& x, const TriOptions& opts) {
  check_conforming(f, x);
  if (!x.participating()) {
    return;
  }
  Context& ctx = x.context();
  const auto m = static_cast<std::size_t>(f.local_count(0));
  detail::TriPipeline pipe(ctx, x.view(), /*sys_tag=*/0);
  pipe.set_local(std::vector<double>(m, lo), std::vector<double>(m, diag),
                 std::vector<double>(m, up), to_vector(f.local_strided()));
  run_pipeline_to_completion(pipe, opts, x);
}

}  // namespace kali

// Alternative parallel tridiagonal solvers, for the E10 comparison bench.
//
// The paper (§3) notes "a wide variety of parallel tridiagonal algorithms in
// the literature" (ref [8], Johnsson).  We implement the classic
// alternatives the substructured algorithm competes with:
//
//  * gather_thomas      — ship the whole system to one processor, solve
//                         sequentially, scatter the solution.  The trivial
//                         baseline; wins only for tiny p or huge latency.
//  * pipelined_thomas   — chained elimination: the Thomas recurrence flows
//                         through the processors in block order (two carry
//                         messages per processor).  Minimal arithmetic but
//                         serial: O(n) critical path for one system.
//  * cyclic_reduction   — parallel cyclic reduction (PCR): log2(n) steps,
//                         every row active each step.  Uses the
//                         inspector/executor (GatherPlan) for the
//                         distance-2^s row fetches — the "runtime gather"
//                         communication schedule of paper ref [17].
//
// All take the same block-distributed arrays as kali::tri.
#pragma once

#include "runtime/dist_array.hpp"

namespace kali {

void gather_thomas(const DistArray1<double>& b, const DistArray1<double>& a,
                   const DistArray1<double>& c, const DistArray1<double>& f,
                   DistArray1<double>& x);

void pipelined_thomas(const DistArray1<double>& b, const DistArray1<double>& a,
                      const DistArray1<double>& c, const DistArray1<double>& f,
                      DistArray1<double>& x);

void cyclic_reduction(const DistArray1<double>& b, const DistArray1<double>& a,
                      const DistArray1<double>& c, const DistArray1<double>& f,
                      DistArray1<double>& x);

}  // namespace kali

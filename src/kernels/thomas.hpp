// Sequential tridiagonal solver (the Thomas algorithm) — the paper's
// `seqtri` kernel and the root solve of the substructured algorithm.
#pragma once

#include <span>

#include "runtime/dist_array.hpp"

namespace kali {

/// Approximate flops per row of a Thomas solve (used for cost charging).
inline constexpr double kThomasFlopsPerRow = 8.0;

/// Solve the tridiagonal system
///   b[i] x[i-1] + a[i] x[i] + c[i] x[i+1] = f[i],   i = 0 .. n-1
/// (b[0] and c[n-1] are ignored).  Inputs are untouched; the system must
/// admit factorization without pivoting (e.g. diagonally dominant).
void thomas_solve(std::span<const double> b, std::span<const double> a,
                  std::span<const double> c, std::span<const double> f,
                  std::span<double> x);

/// Constant-coefficient convenience: lo x[i-1] + diag x[i] + up x[i+1] = f.
void thomas_solve_const(double lo, double diag, double up,
                        std::span<const double> f, std::span<double> x);

/// Strided variants for rows/columns of multidimensional local slabs.
void thomas_solve_strided(Strided<const double> b, Strided<const double> a,
                          Strided<const double> c, Strided<const double> f,
                          Strided<double> x);

}  // namespace kali

#include "kernels/baselines.hpp"

#include <cmath>

#include "kernels/thomas.hpp"
#include "machine/collectives.hpp"
#include "machine/context.hpp"
#include "runtime/inspector.hpp"
#include "support/check.hpp"

namespace kali {

namespace {

// Kernel-library band of the reserved-tag registry (machine/message.hpp),
// distinct from tri's per-system tags (kTagTriBase + 2 * nsys): collisions
// would need ~2^21 concurrently pipelined systems.
constexpr int kTagCarry = kTagBaselineBase;
constexpr int kTagBack = kTagBaselineBase + 1;
constexpr int kTagScatter = kTagBaselineBase + 2;

std::vector<double> to_vector(Strided<const double> s) {
  std::vector<double> v(static_cast<std::size_t>(s.n));
  for (int i = 0; i < s.n; ++i) {
    v[static_cast<std::size_t>(i)] = s[i];
  }
  return v;
}

void check_conforming(const DistArray1<double>& a, const DistArray1<double>& x) {
  KALI_CHECK(a.extent(0) == x.extent(0), "tridiag baseline: extent mismatch");
  KALI_CHECK(a.view() == x.view(), "tridiag baseline: view mismatch");
  KALI_CHECK(a.dist_kind(0) == DistKind::kBlock,
             "tridiag baseline: block distribution required");
}

}  // namespace

void gather_thomas(const DistArray1<double>& b, const DistArray1<double>& a,
                   const DistArray1<double>& c, const DistArray1<double>& f,
                   DistArray1<double>& x) {
  check_conforming(a, x);
  if (!x.participating()) {
    return;
  }
  Context& ctx = x.context();
  Group g = x.group();
  const int n = x.extent(0);

  auto bb = gather(ctx, g, 0, std::span<const double>(to_vector(b.local_strided())));
  auto aa = gather(ctx, g, 0, std::span<const double>(to_vector(a.local_strided())));
  auto cc = gather(ctx, g, 0, std::span<const double>(to_vector(c.local_strided())));
  auto ff = gather(ctx, g, 0, std::span<const double>(to_vector(f.local_strided())));

  std::vector<double> sol;
  if (g.index() == 0) {
    KALI_CHECK(static_cast<int>(aa.size()) == n, "gather_thomas: bad gather");
    sol.resize(static_cast<std::size_t>(n));
    thomas_solve(bb, aa, cc, ff, sol);
    ctx.compute(kThomasFlopsPerRow * n);
    // Scatter each member's block back (group order == block order).
    std::size_t off = static_cast<std::size_t>(x.local_count(0));
    for (int i = 1; i < g.size(); ++i) {
      const auto cnt = static_cast<std::size_t>(x.map(0).count(i));
      ctx.send_span<double>(g.rank_at(i), kTagScatter,
                            std::span<const double>(sol.data() + off, cnt));
      off += cnt;
    }
    auto xs = x.local_strided();
    for (int i = 0; i < xs.n; ++i) {
      xs[i] = sol[static_cast<std::size_t>(i)];
    }
  } else {
    auto mine = ctx.recv_vec<double>(g.rank_at(0), kTagScatter);
    auto xs = x.local_strided();
    KALI_CHECK(static_cast<int>(mine.size()) == xs.n, "gather_thomas: scatter");
    for (int i = 0; i < xs.n; ++i) {
      xs[i] = mine[static_cast<std::size_t>(i)];
    }
  }
}

void pipelined_thomas(const DistArray1<double>& b, const DistArray1<double>& a,
                      const DistArray1<double>& c, const DistArray1<double>& f,
                      DistArray1<double>& x) {
  check_conforming(a, x);
  if (!x.participating()) {
    return;
  }
  Context& ctx = x.context();
  const ProcView& pv = x.view();
  const int me = pv.linear_index_of(ctx.rank());
  const int p = pv.count();
  const int m = x.local_count(0);

  auto bb = to_vector(b.local_strided());
  auto aa = to_vector(a.local_strided());
  auto cc = to_vector(c.local_strided());
  auto ff = to_vector(f.local_strided());

  // Forward: carry (cp, fp) of the row just above my block.
  double cp_in = 0.0, fp_in = 0.0;
  if (me > 0) {
    auto carry = ctx.recv<std::array<double, 2>>(pv.rank_of1(me - 1), kTagCarry);
    cp_in = carry[0];
    fp_in = carry[1];
  }
  std::vector<double> cp(static_cast<std::size_t>(m)), fp(cp.size());
  for (int i = 0; i < m; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const double bi = (me == 0 && i == 0) ? 0.0 : bb[u];
    const double prev_cp = i == 0 ? cp_in : cp[u - 1];
    const double prev_fp = i == 0 ? fp_in : fp[u - 1];
    const double denom = aa[u] - bi * prev_cp;
    KALI_CHECK(denom != 0.0, "pipelined_thomas: zero pivot");
    cp[u] = cc[u] / denom;
    fp[u] = (ff[u] - bi * prev_fp) / denom;
  }
  ctx.compute(kThomasFlopsPerRow * 0.6 * m);
  if (me < p - 1) {
    ctx.send(pv.rank_of1(me + 1), kTagCarry,
             std::array<double, 2>{cp[static_cast<std::size_t>(m - 1)],
                                   fp[static_cast<std::size_t>(m - 1)]});
  }

  // Backward: x value of the row just below my block.
  double x_below = 0.0;
  bool have_below = false;
  if (me < p - 1) {
    x_below = ctx.recv<double>(pv.rank_of1(me + 1), kTagBack);
    have_below = true;
  }
  auto xs = x.local_strided();
  for (int i = m - 1; i >= 0; --i) {
    const auto u = static_cast<std::size_t>(i);
    if (i == m - 1 && !have_below) {
      xs[i] = fp[u];
    } else {
      const double next = i == m - 1 ? x_below : xs[i + 1];
      xs[i] = fp[u] - cp[u] * next;
    }
  }
  ctx.compute(kThomasFlopsPerRow * 0.4 * m);
  if (me > 0) {
    ctx.send(pv.rank_of1(me - 1), kTagBack, xs[0]);
  }
}

void cyclic_reduction(const DistArray1<double>& b, const DistArray1<double>& a,
                      const DistArray1<double>& c, const DistArray1<double>& f,
                      DistArray1<double>& x) {
  check_conforming(a, x);
  if (!x.participating()) {
    return;
  }
  Context& ctx = x.context();
  const int n = x.extent(0);

  // Working copies as distributed arrays (PCR rewrites every row each step).
  DistArray1<double> wb = b.clone();
  DistArray1<double> wa = a.clone();
  DistArray1<double> wc = c.clone();
  DistArray1<double> wf = f.clone();
  // Boundary couplings outside the domain are identically zero.
  if (wb.owns({0})) {
    wb(0) = 0.0;
  }
  if (wc.owns({n - 1})) {
    wc(n - 1) = 0.0;
  }

  const int lo = x.own_lower(0);
  const int m = x.local_count(0);

  for (int d = 1; d < n; d *= 2) {
    // Inspector: rows i-d and i+d for every owned i (clamped to identity).
    std::vector<int> wants;
    wants.reserve(static_cast<std::size_t>(2 * m));
    for (int l = 0; l < m; ++l) {
      const int i = lo + l;
      wants.push_back(std::max(i - d, 0));
      wants.push_back(std::min(i + d, n - 1));
    }
    GatherPlan plan = GatherPlan::build(wb, wants);
    auto gb = plan.execute(wb);
    auto ga = plan.execute(wa);
    auto gc = plan.execute(wc);
    auto gf = plan.execute(wf);

    std::vector<double> nb(static_cast<std::size_t>(m)), na(nb.size()),
        nc(nb.size()), nf(nb.size());
    for (int l = 0; l < m; ++l) {
      const auto u = static_cast<std::size_t>(l);
      const int i = lo + l;
      const std::size_t up = 2 * u;      // row i-d slot
      const std::size_t dn = 2 * u + 1;  // row i+d slot
      const bool has_up = i - d >= 0;
      const bool has_dn = i + d <= n - 1;
      const double alpha = has_up ? -wb(i) / ga[up] : 0.0;
      const double gamma = has_dn ? -wc(i) / ga[dn] : 0.0;
      nb[u] = has_up ? alpha * gb[up] : 0.0;
      nc[u] = has_dn ? gamma * gc[dn] : 0.0;
      na[u] = wa(i) + (has_up ? alpha * gc[up] : 0.0) +
              (has_dn ? gamma * gb[dn] : 0.0);
      nf[u] = wf(i) + (has_up ? alpha * gf[up] : 0.0) +
              (has_dn ? gamma * gf[dn] : 0.0);
    }
    for (int l = 0; l < m; ++l) {
      const auto u = static_cast<std::size_t>(l);
      const int i = lo + l;
      wb(i) = nb[u];
      wa(i) = na[u];
      wc(i) = nc[u];
      wf(i) = nf[u];
    }
    ctx.compute(12.0 * m);
  }

  auto xs = x.local_strided();
  for (int l = 0; l < m; ++l) {
    xs[l] = wf(lo + l) / wa(lo + l);
  }
  ctx.compute(1.0 * m);
}

}  // namespace kali

#include "kernels/fft2.hpp"

#include <vector>

#include "kernels/fft.hpp"
#include "machine/context.hpp"
#include "runtime/redistribute.hpp"
#include "support/check.hpp"

namespace kali {

void fft_lines(DistArray2<Complex>& a, int dim, bool inverse) {
  if (!a.participating()) {
    return;
  }
  KALI_CHECK(a.dist_kind(dim) == DistKind::kStar,
             "fft_lines: transform dimension must be local (*)");
  const int other = 1 - dim;
  const int n = a.extent(dim);
  Context& ctx = a.context();
  std::vector<Complex> line(static_cast<std::size_t>(n));
  for (int r : a.owned(other)) {
    for (int k = 0; k < n; ++k) {
      line[static_cast<std::size_t>(k)] = dim == 0 ? a(k, r) : a(r, k);
    }
    fft_inplace(line, inverse);
    ctx.compute(fft_flops(n));
    for (int k = 0; k < n; ++k) {
      (dim == 0 ? a(k, r) : a(r, k)) = line[static_cast<std::size_t>(k)];
    }
  }
}

void fft2_forward(Context& ctx, DistArray2<Complex>& rows,
                  DistArray2<Complex>& cols) {
  KALI_CHECK(rows.dist_kind(1) == DistKind::kStar &&
                 cols.dist_kind(0) == DistKind::kStar,
             "fft2: rows must be (block, *), cols (*, block)");
  fft_lines(rows, 1, /*inverse=*/false);
  // The distributed transpose: (block, *) -> (*, block) is box-eligible, so
  // redistribute() exchanges contiguous slabs between intersecting rank
  // pairs only — no per-element index metadata on the wire.
  redistribute(ctx, rows, cols);
  fft_lines(cols, 0, /*inverse=*/false);
}

void fft2_inverse(Context& ctx, DistArray2<Complex>& cols,
                  DistArray2<Complex>& rows) {
  fft_lines(cols, 0, /*inverse=*/true);
  redistribute(ctx, cols, rows);
  fft_lines(rows, 1, /*inverse=*/true);
}

}  // namespace kali

// Explicit time stepping of the 2-D wave equation — the paper's remaining
// motivating domain ("tensor product algorithms ... are the basis of most
// numerical weather prediction programs", section 6): a leapfrog scheme
// whose entire parallel structure is one halo exchange plus one
// owner-computes doall per step.
//
//   u_tt = c^2 (u_xx + u_yy),  homogeneous Dirichlet walls,
//   a Gaussian pulse bouncing inside the unit square.
#include <cmath>
#include <iostream>

#include "machine/measure.hpp"
#include "runtime/doall.hpp"
#include "support/table.hpp"

int main() {
  using namespace kali;
  constexpr int kP = 4, kN = 96, kSteps = 200;
  constexpr double kC = 1.0;
  const double h = 1.0 / (kN + 1);
  const double dt = 0.4 * h / kC;  // CFL-safe
  const double lam2 = (kC * dt / h) * (kC * dt / h);

  Machine machine(kP * kP);
  double energy0 = 0.0, energy1 = 0.0, makespan = 0.0;
  machine.run([&](Context& ctx) {
    ProcView procs = ProcView::grid2(kP, kP);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
    D2 u(ctx, procs, {kN, kN}, dists, {1, 1});
    D2 uprev(ctx, procs, {kN, kN}, dists, {1, 1});
    D2 unext(ctx, procs, {kN, kN}, dists, {1, 1});

    auto pulse = [&](int i, int j) {
      const double x = (i + 1) * h - 0.35, y = (j + 1) * h - 0.6;
      return std::exp(-400.0 * (x * x + y * y));
    };
    u.fill([&](std::array<int, 2> g) { return pulse(g[0], g[1]); });
    uprev.fill([&](std::array<int, 2> g) { return pulse(g[0], g[1]); });

    auto energy = [&]() {
      double local = 0.0;
      u.for_each_owned([&](std::array<int, 2> g) { local += u.at(g) * u.at(g); });
      Group grp = procs.group(ctx.rank());
      return allreduce_sum(ctx, grp, local);
    };
    const double e0 = energy();

    PhaseTimer timer(ctx, procs.group(ctx.rank()));
    for (int step = 0; step < kSteps; ++step) {
      u.exchange_halo();
      doall2(
          unext, Range{0, kN - 1}, Range{0, kN - 1},
          [&](int i, int j) {
            const double lap =
                u.at_halo({i - 1, j}) + u.at_halo({i + 1, j}) +
                u.at_halo({i, j - 1}) + u.at_halo({i, j + 1}) -
                4.0 * u.at_halo({i, j});
            unext(i, j) = 2.0 * u(i, j) - uprev(i, j) + lam2 * lap;
          },
          9.0);
      std::swap(uprev, u);
      std::swap(u, unext);
    }
    const double t = timer.finish().makespan;
    const double e1 = energy();
    if (ctx.rank() == 0) {
      energy0 = e0;
      energy1 = e1;
      makespan = t;
    }
  });

  std::cout << "2-D wave equation, " << kN << "^2 grid on " << kP << "x" << kP
            << " procs, " << kSteps << " leapfrog steps\n"
            << "  pulse energy start/end : " << fmt_sci(energy0) << " / "
            << fmt_sci(energy1) << "  (bounded: stable scheme)\n"
            << "  simulated time         : " << fmt_time(makespan) << "  ("
            << fmt_time(makespan / kSteps) << " per step)\n"
            << "  messages               : "
            << machine.stats().totals().msgs_sent << "\n";
  return 0;
}

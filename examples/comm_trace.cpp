// Message-trace demo: run a mixed communication workload — corner-mode
// halo exchange, redistribution, an inspector/executor gather, an
// all_gather, and sync_clocks barriers — on 8 ranks with a MessageTrace
// attached, then serialize the trace for the offline protocol verifier:
//
//   build/comm_trace /tmp/run.trace
//   tools/check_trace.py /tmp/run.trace
//
// With no argument the trace goes to stdout.  A second argument
// additionally writes the run's happens-before event log for the
// determinism analyzer:
//
//   build/comm_trace /tmp/run.trace /tmp/run.hb
//   tools/check_hb.py /tmp/run.hb
//
// scripts/check_trace.sh and scripts/check_hb.sh run these pipelines end
// to end (and CI runs them on every push), so the artifacts the verifiers
// certify are always the ones the current runtime emits.
#include <cmath>
#include <fstream>
#include <iostream>
#include <ostream>

#include "machine/context.hpp"
#include "machine/hb.hpp"
#include "machine/trace.hpp"
#include "runtime/doall.hpp"
#include "runtime/inspector.hpp"
#include "runtime/redistribute.hpp"

int main(int argc, char** argv) {
  using namespace kali;
  constexpr int kProcs = 8;
  constexpr int kN = 24;

  Machine machine(kProcs);
  MessageTrace trace(kProcs);
  machine.attach_message_trace(&trace);
  HbLog hb(kProcs);
  machine.attach_hb_log(&hb);

  machine.run([&](Context& ctx) {
    ProcView row = ProcView::grid1(kProcs);
    ProcView grid = ProcView::grid2(4, 2);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(),
                                   DimDist::block_dist()};

    // Phase 1: corner-mode halo exchange (coalesced wire) on a 4x2 grid.
    D2 u(ctx, grid, {kN, kN}, dists, {1, 1});
    u.fill([](std::array<int, 2> g) {
      return std::sin(0.1 * g[0]) + std::cos(0.2 * g[1]);
    });
    u.exchange_halo(HaloCorners::kYes);
    Group everyone = grid.group(ctx.rank());
    sync_clocks(ctx, everyone);

    // Phase 2: redistribute the 2-D block slab onto a 1-D row of owners.
    ProcView col = ProcView::grid2(1, kProcs);
    D2 v(ctx, col, {kN, kN}, dists);
    redistribute(ctx, u, v);
    sync_clocks(ctx, everyone);

    // Phase 3: inspector/executor gather of a strided remote section.
    DistArray1<double> a(ctx, row, {kProcs * 16}, {DimDist::block_dist()});
    a.fill([](std::array<int, 1> g) { return 0.5 * g[0]; });
    std::vector<int> wants;
    for (int k = 0; k < 16; ++k) {
      wants.push_back((a.own_lower(0) + 5 * k) % (kProcs * 16));
    }
    auto plan = GatherPlan::build(a, wants);
    auto vals = plan.execute(a);

    // Phase 4: all_gather a per-rank digest of the fetched values.
    double digest = 0.0;
    for (double x : vals) {
      digest += x;
    }
    std::vector<double> digests = all_gather(
        ctx, everyone, std::span<const double>(&digest, 1));
    (void)digests;
    sync_clocks(ctx, everyone);

    // Phase 5: the async leg — a split-phase halo exchange overlapping a
    // 5-point interior stencil (exchange_halo_begin / finish), then a raw
    // ring exchange that interleaves nonblocking and blocking sends on one
    // (src, dst, tag) lane: the irecv pairs with the isend and the
    // blocking recv with the blocking send, in FIFO order.  This is what
    // populates the HB log with ipost/icomp windows and the trace with
    // async-matched records for the offline verifiers.
    D2 r(ctx, grid, {kN, kN}, dists);
    auto stencil = [&](int i, int j) {
      r(i, j) = 4.0 * u.at_halo({i, j}) - u.at_halo({i - 1, j}) -
                u.at_halo({i + 1, j}) - u.at_halo({i, j - 1}) -
                u.at_halo({i, j + 1});
    };
    auto ex = u.exchange_halo_begin();
    doall2_ring(u, Range{0, kN - 1}, Range{0, kN - 1}, 1, Ring::kInterior,
                stencil, 6.0);
    ex.finish();
    doall2_ring(u, Range{0, kN - 1}, Range{0, kN - 1}, 1, Ring::kBoundary,
                stencil, 6.0);
    sync_clocks(ctx, everyone);

    constexpr int kAsyncTag = 77;  // user band
    const int next = (ctx.rank() + 1) % kProcs;
    const int prev = (ctx.rank() + kProcs - 1) % kProcs;
    double a0 = 0.0, a1 = 0.0;
    CommHandle h0 = ctx.irecv<double>(prev, kAsyncTag, a0);
    (void)ctx.isend<double>(next, kAsyncTag, digest);        // pairs with h0
    ctx.send<double>(next, kAsyncTag, 2.0 * digest);         // same lane
    ctx.wait(h0);
    a1 = ctx.recv<double>(prev, kAsyncTag);  // lane FIFO: the 2x payload
    (void)a0;
    (void)a1;
    sync_clocks(ctx, everyone);
  });

  if (argc > 1) {
    std::ofstream os(argv[1]);
    if (!os) {
      std::cerr << "comm_trace: cannot open " << argv[1] << "\n";
      return 1;
    }
    trace.write(os);
  } else {
    trace.write(std::cout);
  }
  if (argc > 2) {
    std::ofstream os(argv[2]);
    if (!os) {
      std::cerr << "comm_trace: cannot open " << argv[2] << "\n";
      return 1;
    }
    hb.write_log(os);
  }
  std::cerr << "comm_trace: " << trace.total_events() << " trace events, "
            << hb.total_events() << " hb events on " << kProcs << " ranks\n";
  return 0;
}

// Steady heat conduction by ADI — the computational-fluid-dynamics-style
// workload the paper's section 4 is built around (Listings 7-8).
//
// Solves  u_xx + u_yy = F  on the unit square (manufactured solution
// sin(pi x) sin(pi y)) with the plain and the pipelined ADI variants and
// reports convergence history, accuracy, and the pipelining speedup.
#include <cmath>
#include <iostream>

#include "machine/measure.hpp"
#include "solvers/adi.hpp"
#include "support/table.hpp"

int main() {
  using namespace kali;
  constexpr int kPx = 4, kPy = 4, kN = 64;

  for (bool pipelined : {false, true}) {
    Machine machine(kPx * kPy);
    double err = 0.0, makespan = 0.0;
    std::vector<double> history;
    machine.run([&](Context& ctx) {
      ProcView procs = ProcView::grid2(kPx, kPy);
      Op2 op;
      op.hx = op.hy = 1.0 / (kN + 1);
      using D2 = DistArray2<double>;
      const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
      D2 u(ctx, procs, {kN, kN}, dists, {1, 1});
      D2 f(ctx, procs, {kN, kN}, dists);
      f.fill([&](std::array<int, 2> g) {
        return rhs2(op, (g[0] + 1) * op.hx, (g[1] + 1) * op.hy);
      });
      AdiOptions opts;
      opts.op = op;
      opts.tau = adi_default_tau(op, kN);
      opts.pipelined = pipelined;

      PhaseTimer timer(ctx, procs.group(ctx.rank()));
      std::vector<double> res;
      for (int block = 0; block < 6; ++block) {
        for (int it = 0; it < 15; ++it) {
          adi_iterate(opts, u, f);
        }
        res.push_back(adi_residual_norm(opts.op, u, f));
      }
      const double t = timer.finish().makespan;

      double e = 0.0;
      u.for_each_owned([&](std::array<int, 2> g) {
        e = std::max(e, std::abs(u.at(g) - exact2((g[0] + 1) * op.hx,
                                                  (g[1] + 1) * op.hy)));
      });
      Group grp = procs.group(ctx.rank());
      e = allreduce_max(ctx, grp, e);
      if (ctx.rank() == 0) {
        err = e;
        makespan = t;
        history = res;
      }
    });

    std::cout << (pipelined ? "pipelined ADI (Listing 8)"
                            : "plain ADI (Listing 7)")
              << " on " << kPx << "x" << kPy << " procs, " << kN << "^2 grid\n"
              << "  residual every 15 iterations:";
    for (double r : history) {
      std::cout << " " << fmt_sci(r, 1);
    }
    std::cout << "\n  max error vs exact    : " << fmt_sci(err)
              << "  (discretization level)\n"
              << "  simulated time (90 it): " << fmt_time(makespan) << "\n\n";
  }
  return 0;
}

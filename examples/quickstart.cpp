// Quickstart: the paper's Listing 3 (Jacobi iteration in KF1 constructs),
// end to end on the virtual loosely coupled machine.
//
//   parsub jacobi(X, f, np; procs)
//   processors procs(p, p)
//   real X(0:np, 0:np), f(0:np, 0:np) dist (block, block)
//   do it = 1, 50
//     doall (i, j) = [1,n]*[1,n] on owner(X(i,j))
//       X(i,j) = 0.25*(X(i+1,j) + X(i-1,j) + X(i,j+1) + X(i,j-1)) - f(i,j)
//
// Build & run:  build/examples/quickstart
#include <cmath>
#include <iostream>

#include "machine/context.hpp"
#include "runtime/doall.hpp"
#include "support/table.hpp"

int main() {
  using namespace kali;
  constexpr int kP = 4;    // processors procs(p, p)
  constexpr int kN = 64;   // interior grid points per side
  constexpr int kIters = 50;

  Machine machine(kP * kP);
  double final_change = 0.0;
  machine.run([&](Context& ctx) {
    ProcView procs = ProcView::grid2(kP, kP);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
    D2 x(ctx, procs, {kN, kN}, dists, {1, 1});  // dist (block, block) + frame
    D2 f(ctx, procs, {kN, kN}, dists);
    f.fill([](std::array<int, 2> g) {
      return 1e-3 * std::sin(0.2 * g[0]) * std::cos(0.3 * g[1]);
    });

    double delta = 0.0;
    for (int it = 0; it < kIters; ++it) {
      auto in = x.copy_in();  // the doall's copy-in/copy-out semantics
      delta = 0.0;
      doall2(
          x, Range{0, kN - 1}, Range{0, kN - 1},
          [&](int i, int j) {
            const double next =
                0.25 * (in.at_halo({i + 1, j}) + in.at_halo({i - 1, j}) +
                        in.at_halo({i, j + 1}) + in.at_halo({i, j - 1})) -
                f(i, j);
            delta = std::max(delta, std::abs(next - x(i, j)));
            x(i, j) = next;
          },
          6.0);
    }
    Group g = procs.group(ctx.rank());
    delta = allreduce_max(ctx, g, delta);
    if (ctx.rank() == 0) {
      final_change = delta;
    }
  });

  auto stats = machine.stats();
  std::cout << "jacobi on a " << kP << "x" << kP << " virtual machine, "
            << kN << "x" << kN << " grid, " << kIters << " iterations\n"
            << "  final max update      : " << fmt_sci(final_change) << "\n"
            << "  simulated time        : " << fmt_time(stats.max_clock()) << "\n"
            << "  messages sent         : " << stats.totals().msgs_sent << "\n"
            << "  compute utilization   : " << fmt(stats.compute_utilization(), 2)
            << "\n";
  return 0;
}

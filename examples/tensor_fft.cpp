// Distributed 2-D FFT low-pass filtering — the paper's "picture processing"
// motivation (section 1) with its other named 1-D kernel, the FFT
// (section 3), composed by the canonical tensor product pattern:
//
//   row FFTs under dist (block, *)   — every row local
//   redistribute to dist (*, block)  — the transpose communication
//   column FFTs                      — every column local
//
// A synthetic image is filtered by zeroing high-frequency coefficients and
// transformed back; we report energy removed and round-trip fidelity.
#include <cmath>
#include <complex>
#include <iostream>

#include "kernels/fft2.hpp"
#include "machine/collectives.hpp"
#include "runtime/redistribute.hpp"
#include "support/table.hpp"

namespace {

using cd = std::complex<double>;

double image(int i, int j, int n) {
  const double x = static_cast<double>(i) / n, y = static_cast<double>(j) / n;
  // smooth blob + high-frequency checkerboard "noise"
  return std::exp(-8.0 * ((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5))) +
         0.2 * ((i + j) % 2 == 0 ? 1.0 : -1.0);
}

}  // namespace

int main() {
  using namespace kali;
  constexpr int kP = 4, kN = 64, kCut = 12;  // keep |freq| < kCut

  Machine machine(kP);
  double removed_energy = 0.0, smooth_err = 0.0;
  machine.run([&](Context& ctx) {
    ProcView procs = ProcView::grid1(kP);
    using DC = DistArray2<cd>;
    const typename DC::Dists by_rows{DimDist::block_dist(), DimDist::star()};
    const typename DC::Dists by_cols{DimDist::star(), DimDist::block_dist()};
    DC rows(ctx, procs, {kN, kN}, by_rows);
    DC cols(ctx, procs, {kN, kN}, by_cols);
    rows.fill([&](std::array<int, 2> g) {
      return cd(image(g[0], g[1], kN), 0.0);
    });

    // Forward transform: rows, distributed transpose, columns.
    fft2_forward(ctx, rows, cols);

    // Low-pass filter in place (cols layout owns full columns).
    double removed = 0.0, total = 0.0;
    auto freq_ok = [&](int k) {
      const int f = k <= kN / 2 ? k : kN - k;
      return f < kCut;
    };
    cols.for_each_owned([&](std::array<int, 2> g) {
      const double e = std::norm(cols.at(g));
      total += e;
      if (!freq_ok(g[0]) || !freq_ok(g[1])) {
        removed += e;
        cols.at(g) = cd(0.0, 0.0);
      }
    });
    ctx.compute(2.0 * kN * kN / kP);

    // Inverse transform: columns, transpose back, rows.
    fft2_inverse(ctx, cols, rows);

    // The filtered image should match the smooth blob (the checkerboard
    // lives at the Nyquist corner and is removed entirely).
    double err = 0.0;
    rows.for_each_owned([&](std::array<int, 2> g) {
      const double x = static_cast<double>(g[0]) / kN;
      const double y = static_cast<double>(g[1]) / kN;
      const double smooth =
          std::exp(-8.0 * ((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5)));
      err = std::max(err, std::abs(rows.at(g).real() - smooth));
    });
    Group grp = procs.group(ctx.rank());
    err = allreduce_max(ctx, grp, err);
    removed = allreduce_sum(ctx, grp, removed);
    total = allreduce_sum(ctx, grp, total);
    if (ctx.rank() == 0) {
      removed_energy = removed / total;
      smooth_err = err;
    }
  });

  std::cout << "distributed 2-D FFT low-pass filter, " << kN << "x" << kN
            << " image on " << kP << " procs\n"
            << "  spectral energy removed : " << fmt(100.0 * removed_energy, 1)
            << " %\n"
            << "  max |filtered - smooth| : " << fmt_sci(smooth_err)
            << "  (checkerboard eliminated)\n"
            << "  simulated time          : "
            << fmt_time(machine.stats().max_clock()) << "\n";
  return 0;
}

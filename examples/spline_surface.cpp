// Tensor-product cubic spline surface fitting — the paper's motivating
// application list opens with "spline fitting ... in computer aided
// geometry" (section 1), and cubic spline fitting is one of its named 1-D
// kernels (section 3).
//
// The surface S(x, y) is fit on an nx x ny knot grid by the classic tensor
// product recipe the paper is about: 1-D spline fits along x (local:
// x is the undistributed dimension), then 1-D spline moment systems along
// the distributed y dimension solved in parallel with the pipelined
// multi-system solver (the (1, 4, 1) systems of every x-line at once).
#include <cmath>
#include <iostream>

#include "kernels/spline.hpp"
#include "kernels/thomas.hpp"
#include "runtime/io.hpp"
#include "support/table.hpp"

namespace {

double surface(double x, double y) {
  return std::sin(1.7 * x) * std::exp(-0.3 * y) + 0.25 * x * y;
}

}  // namespace

int main() {
  using namespace kali;
  constexpr int kP = 4;
  constexpr int kNx = 33, kNy = 64;  // knots per direction
  constexpr double kHx = 1.0 / (kNx - 1), kHy = 1.0 / (kNy - 1);

  Machine machine(kP);
  double max_err = 0.0;
  machine.run([&](Context& ctx) {
    ProcView procs = ProcView::grid1(kP);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
    // F(i, j) = surface(x_i, y_j); x undistributed, y block distributed.
    D2 F(ctx, procs, {kNx, kNy}, dists);
    F.fill([&](std::array<int, 2> g) {
      return surface(g[0] * kHx, g[1] * kHy);
    });

    // Step 1 (local): for every owned y-line, the 1-D spline values along x
    // are evaluated at the query abscissa xq — a purely sequential kernel,
    // like seqtri inside mg2.
    // Step 2 (parallel): the y-direction moment systems of all x-queries
    // are solved at once with the pipelined multi-system tridiagonal solver.
    const double queries[] = {0.137, 0.5, 0.861};
    double err = 0.0;
    for (double xq : queries) {
      D2 line_vals(ctx, procs, {1, kNy}, dists);   // S(xq, y_j)
      for (int j : F.owned(1)) {
        std::vector<double> col(kNx);
        for (int i = 0; i < kNx; ++i) {
          col[static_cast<std::size_t>(i)] = F(i, j);
        }
        auto mom = spline_moments(col, kHx);
        line_vals(0, j) = spline_eval(col, mom, 0.0, kHx, xq);
        ctx.compute(kThomasFlopsPerRow * kNx + 12.0);
      }
      // Moment system along y for the sampled line (distributed solve).
      D2 mom(ctx, procs, {1, kNy}, dists);
      auto lv = line_vals.fix(0, 0);
      DistArray1<double> yh(ctx, procs, {kNy}, {DimDist::block_dist()});
      yh.fill([&](std::array<int, 1> g) { return lv.at(g); });
      DistArray1<double> m1 = mom.fix(0, 0);
      spline_fit(yh, kHy, m1);

      // Evaluate at query ordinates: gather the line (small) and compare.
      auto vals = gather_all(yh);
      auto moms = gather_all(m1);
      for (double yq : {0.21, 0.48, 0.77}) {
        const double s = spline_eval(vals, moms, 0.0, kHy, yq);
        err = std::max(err, std::abs(s - surface(xq, yq)));
      }
    }
    Group grp = procs.group(ctx.rank());
    err = allreduce_max(ctx, grp, err);
    if (ctx.rank() == 0) {
      max_err = err;
    }
  });

  std::cout << "tensor-product spline surface fit on " << kP << " procs, "
            << kNx << "x" << kNy << " knots\n"
            << "  max |S(xq,yq) - f(xq,yq)| over 9 query points: "
            << fmt_sci(max_err) << "\n"
            << "  simulated time: " << fmt_time(machine.stats().max_clock())
            << "\n"
            << "(x-direction fits are sequential kernels on the undistributed\n"
            << " dimension; y-direction moment systems use the parallel\n"
            << " substructured solver — the paper's kernel composition.)\n";
  return 0;
}

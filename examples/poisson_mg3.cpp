// 3-D Poisson by the paper's mg3 (Listings 9-11): semicoarsened multigrid
// with zebra plane relaxation, each plane solve itself a 2-D tensor product
// multigrid on a sliced processor view — "algorithms of much greater
// complexity are routinely used for modeling of physical problems".
#include <cmath>
#include <iostream>

#include "solvers/mg3.hpp"
#include "support/table.hpp"

int main() {
  using namespace kali;
  constexpr int kPx = 2, kPy = 2, kN = 16;

  Machine machine(kPx * kPy);
  std::vector<double> history;
  double err = 0.0;
  machine.run([&](Context& ctx) {
    ProcView procs = ProcView::grid2(kPx, kPy);
    Op3 op;
    op.hx = op.hy = op.hz = 1.0 / kN;
    using D3 = DistArray3<double>;
    const typename D3::Dists dists{DimDist::star(), DimDist::block_dist(),
                                   DimDist::block_dist()};
    D3 u(ctx, procs, {kN + 1, kN + 1, kN + 1}, dists, {0, 1, 1});
    D3 f(ctx, procs, {kN + 1, kN + 1, kN + 1}, dists);
    f.fill([&](std::array<int, 3> g) {
      return rhs3(op, g[0] * op.hx, g[1] * op.hy, g[2] * op.hz);
    });

    std::vector<double> res;
    res.push_back(mg3_residual_norm(op, u, f));
    for (int cycle = 0; cycle < 6; ++cycle) {
      mg3_cycle(op, u, f);
      res.push_back(mg3_residual_norm(op, u, f));
    }
    double e = 0.0;
    u.for_each_owned([&](std::array<int, 3> g) {
      e = std::max(e, std::abs(u.at(g) - exact3(g[0] * op.hx, g[1] * op.hy,
                                                g[2] * op.hz)));
    });
    Group grp = procs.group(ctx.rank());
    e = allreduce_max(ctx, grp, e);
    if (ctx.rank() == 0) {
      history = res;
      err = e;
    }
  });

  std::cout << "mg3 on " << kPx << "x" << kPy << " procs, " << kN
            << "^3 grid (zebra plane relaxation, z-semicoarsening)\n";
  Table t({"cycle", "residual", "factor"});
  for (std::size_t c = 0; c < history.size(); ++c) {
    t.add_row({std::to_string(c), fmt_sci(history[c]),
               c == 0 ? "-" : fmt(history[c] / history[c - 1], 3)});
  }
  t.print(std::cout);
  std::cout << "max error vs exact solution: " << fmt_sci(err)
            << " (discretization level)\n"
            << "simulated time: " << fmt_time(machine.stats().max_clock())
            << "\n";
  return 0;
}
